"""Non-blocking all-to-all schedules.

The paper's ``Ialltoall`` function-set contains three algorithms
(§III-E):

* **linear** — a single round posting all ``2(P-1)`` requests at once
  (this is also the only algorithm stock LibNBC provides, which is what
  the ADCL-vs-LibNBC comparison in §IV-B exploits);
* **pairwise exchange** — ``P-1`` balanced rounds, round *r* exchanging
  with ranks ``(rank ± r) mod P``;
* **dissemination (Bruck)** — ``ceil(log2 P)`` rounds moving ``~P/2``
  blocks each, with pack/unpack copies; wins for small messages where
  latency dominates, loses for large ones because it moves
  ``log2(P)/2`` times the data.

Buffers: ``"send"`` and ``"recv"`` are the user buffers (``P x m``
bytes); Bruck additionally uses ``"tmp"`` (``P x m``) and the staging
areas ``"so"`` / ``"si"`` (``ceil(P/2) x m`` each).  Allocation sizes
are reported by :func:`alltoall_scratch_bytes`.
"""

from __future__ import annotations

import math

from ..errors import ScheduleError
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = [
    "ALLTOALL_ALGORITHMS",
    "alltoall_scratch_bytes",
    "build_ialltoall",
    "compiled_ialltoall",
    "bruck_final_source",
]

#: algorithm names accepted by :func:`build_ialltoall`
ALLTOALL_ALGORITHMS = ("linear", "pairwise", "bruck")


def alltoall_scratch_bytes(size: int, m: int, algorithm: str) -> dict[str, int]:
    """Scratch buffer sizes (bytes) an algorithm needs besides send/recv."""
    if algorithm == "bruck":
        half = math.ceil(size / 2)
        return {"tmp": size * m, "so": half * m, "si": half * m}
    return {}


def bruck_final_source(size: int, rank: int, j: int) -> int:
    """After Bruck's exchange phase, ``tmp[j]`` holds data from this rank."""
    return (rank - j) % size


def build_ialltoall(size: int, rank: int, m: int, algorithm: str) -> Schedule:
    """Build this rank's schedule for an all-to-all of ``m`` bytes/pair."""
    if size <= 0 or not 0 <= rank < size:
        raise ScheduleError(f"bad alltoall geometry size={size} rank={rank}")
    if m < 0:
        raise ScheduleError(f"negative block size {m}")
    if algorithm == "linear":
        return _linear(size, rank, m)
    if algorithm == "pairwise":
        return _pairwise(size, rank, m)
    if algorithm == "bruck":
        return _bruck(size, rank, m)
    raise ScheduleError(
        f"unknown alltoall algorithm {algorithm!r}; "
        f"expected one of {ALLTOALL_ALGORITHMS}"
    )


def _block(name: str, idx: int, m: int) -> tuple[str, int, int]:
    return (name, idx * m, m)


def _linear(size: int, rank: int, m: int) -> Schedule:
    sched = Schedule(name="ialltoall[linear]")
    sched.round()
    sched.copy(m, src=_block("send", rank, m), dst=_block("recv", rank, m))
    # stagger peers so all ranks do not hammer rank 0 first
    for i in range(1, size):
        peer = (rank + i) % size
        sched.recv(peer, m, tagoff=0, dst=_block("recv", peer, m))
    for i in range(1, size):
        peer = (rank + i) % size
        sched.send(peer, m, tagoff=0, src=_block("send", peer, m))
    return sched


def _pairwise(size: int, rank: int, m: int) -> Schedule:
    sched = Schedule(name="ialltoall[pairwise]")
    sched.round()
    sched.copy(m, src=_block("send", rank, m), dst=_block("recv", rank, m))
    for r in range(1, size):
        sched.round()
        sendto = (rank + r) % size
        recvfrom = (rank - r) % size
        sched.recv(recvfrom, m, tagoff=r, dst=_block("recv", recvfrom, m))
        sched.send(sendto, m, tagoff=r, src=_block("send", sendto, m))
    return sched


def _bruck(size: int, rank: int, m: int) -> Schedule:
    sched = Schedule(name="ialltoall[bruck]")
    # phase 1: local rotation tmp[j] = send[(rank + j) % size]
    sched.round()
    for j in range(size):
        sched.copy(m, src=_block("send", (rank + j) % size, m),
                   dst=_block("tmp", j, m))
    # phase 2: log2(P) exchange rounds
    nrounds = math.ceil(math.log2(size)) if size > 1 else 0
    for k in range(nrounds):
        d = 1 << k
        blocks = [j for j in range(size) if j & d]
        sendto = (rank + d) % size
        recvfrom = (rank - d) % size
        total = len(blocks) * m
        sched.round()
        # pack the selected blocks into the staging-out buffer
        for i, j in enumerate(blocks):
            sched.copy(m, src=_block("tmp", j, m), dst=_block("so", i, m))
        sched.round()
        sched.recv(recvfrom, total, tagoff=k + 1, dst=("si", 0, total))
        sched.send(sendto, total, tagoff=k + 1, src=("so", 0, total))
        # unpack received blocks back into tmp at the same positions
        sched.round()
        for i, j in enumerate(blocks):
            sched.copy(m, src=_block("si", i, m), dst=_block("tmp", j, m))
    # phase 3: inverse rotation recv[(rank - j) % size] = tmp[j]
    sched.round()
    for j in range(size):
        sched.copy(m, src=_block("tmp", j, m),
                   dst=_block("recv", (rank - j) % size, m))
    return sched


def compiled_ialltoall(size: int, rank: int, m: int, algorithm: str):
    """Cached compiled plan for :func:`build_ialltoall` (same arguments)."""
    return SCHEDULE_CACHE.get(
        ("alltoall", algorithm, size, rank, m, 0, 0),
        lambda: build_ialltoall(size, rank, m, algorithm),
    )
