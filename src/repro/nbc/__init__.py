"""LibNBC-style non-blocking collectives: schedules + progress engine.

The paper (§III-B) builds every candidate implementation of a
non-blocking collective as a *schedule* — rounds of sends/receives/
copies separated by local barriers — executed incrementally by a
progress engine.  This package re-implements that design:

* :mod:`repro.nbc.schedule` — the schedule data structure,
* :mod:`repro.nbc.request` — the NBC handle / progress engine,
* :mod:`repro.nbc.ibcast` / :mod:`~repro.nbc.ialltoall` /
  :mod:`~repro.nbc.iallgather` / :mod:`~repro.nbc.ireduce` — algorithm
  builders (including the paper's 21 Ibcast and 3 Ialltoall variants),
* :mod:`repro.nbc.coll` — one-call entry points and blocking wrappers.
"""

from .coll import (
    allgather,
    alltoall,
    barrier,
    bcast,
    reduce,
    start_iallgather,
    start_ialltoall,
    start_ibarrier,
    start_ibcast,
    start_ireduce,
)
from .ft import ft_collective
from .iallgather import ALLGATHER_ALGORITHMS, build_iallgather, compiled_iallgather
from .ialltoall import (
    ALLTOALL_ALGORITHMS,
    alltoall_scratch_bytes,
    build_ialltoall,
    compiled_ialltoall,
)
from .ibcast import BINOMIAL, IBCAST_FANOUTS, bcast_tree, build_ibcast, compiled_ibcast
from .ireduce import REDUCE_ALGORITHMS, build_ireduce, compiled_ireduce
from .request import NBCRequest, make_buffers
from .schedule import (
    SCHEDULE_CACHE,
    BufSpec,
    CombineOp,
    CompiledSchedule,
    CopyOp,
    RecvOp,
    Schedule,
    ScheduleCache,
    SendOp,
    resolve,
    schedule_cache_stats,
)

__all__ = [
    "ALLGATHER_ALGORITHMS",
    "ALLTOALL_ALGORITHMS",
    "BINOMIAL",
    "BufSpec",
    "CombineOp",
    "CompiledSchedule",
    "CopyOp",
    "IBCAST_FANOUTS",
    "NBCRequest",
    "RecvOp",
    "REDUCE_ALGORITHMS",
    "SCHEDULE_CACHE",
    "Schedule",
    "ScheduleCache",
    "SendOp",
    "allgather",
    "alltoall",
    "alltoall_scratch_bytes",
    "barrier",
    "bcast",
    "bcast_tree",
    "build_iallgather",
    "build_ialltoall",
    "build_ibcast",
    "build_ireduce",
    "compiled_iallgather",
    "compiled_ialltoall",
    "compiled_ibcast",
    "compiled_ireduce",
    "ft_collective",
    "make_buffers",
    "reduce",
    "resolve",
    "schedule_cache_stats",
    "start_iallgather",
    "start_ialltoall",
    "start_ibarrier",
    "start_ibcast",
    "start_ireduce",
]
