"""LibNBC-style non-blocking collectives: schedules + progress engine.

The paper (§III-B) builds every candidate implementation of a
non-blocking collective as a *schedule* — rounds of sends/receives/
copies separated by local barriers — executed incrementally by a
progress engine.  This package re-implements that design:

* :mod:`repro.nbc.schedule` — the schedule data structure,
* :mod:`repro.nbc.request` — the NBC handle / progress engine,
* :mod:`repro.nbc.ibcast` / :mod:`~repro.nbc.ialltoall` /
  :mod:`~repro.nbc.iallgather` / :mod:`~repro.nbc.ireduce` — algorithm
  builders (including the paper's 21 Ibcast and 3 Ialltoall variants),
* :mod:`repro.nbc.coll` — one-call entry points and blocking wrappers.
"""

from .coll import (
    allgather,
    alltoall,
    barrier,
    bcast,
    reduce,
    start_iallgather,
    start_iallgatherv,
    start_iallreduce,
    start_ialltoall,
    start_ibarrier,
    start_ibcast,
    start_ireduce,
    start_ireduce_scatter,
)
from .ft import ft_collective
from .hier import (
    build_hier_ialltoall,
    build_hier_ibcast,
    compiled_hier_ialltoall,
    compiled_hier_ibcast,
    groups_for_comm,
    hier_alltoall_scratch_bytes,
    hier_bcast_tree,
)
from .iallgather import ALLGATHER_ALGORITHMS, build_iallgather, compiled_iallgather
from .iallgatherv import (
    ALLGATHERV_ALGORITHMS,
    balanced_counts,
    build_iallgatherv,
    compiled_iallgatherv,
)
from .iallreduce import ALLREDUCE_ALGORITHMS, build_iallreduce, compiled_iallreduce
from .ialltoall import (
    ALLTOALL_ALGORITHMS,
    alltoall_scratch_bytes,
    build_ialltoall,
    compiled_ialltoall,
)
from .ibcast import BINOMIAL, IBCAST_FANOUTS, bcast_tree, build_ibcast, compiled_ibcast
from .ireduce import REDUCE_ALGORITHMS, build_ireduce, compiled_ireduce
from .ireduce_scatter import (
    REDUCE_SCATTER_ALGORITHMS,
    build_ireduce_scatter,
    compiled_ireduce_scatter,
)
from .request import NBCRequest, make_buffers
from .schedule import (
    SCHEDULE_CACHE,
    BufSpec,
    CombineOp,
    CompiledSchedule,
    CopyOp,
    RecvOp,
    Schedule,
    ScheduleCache,
    SendOp,
    resolve,
    schedule_cache_stats,
)

__all__ = [
    "ALLGATHER_ALGORITHMS",
    "ALLGATHERV_ALGORITHMS",
    "ALLREDUCE_ALGORITHMS",
    "ALLTOALL_ALGORITHMS",
    "BINOMIAL",
    "BufSpec",
    "CombineOp",
    "CompiledSchedule",
    "CopyOp",
    "IBCAST_FANOUTS",
    "NBCRequest",
    "RecvOp",
    "REDUCE_ALGORITHMS",
    "REDUCE_SCATTER_ALGORITHMS",
    "SCHEDULE_CACHE",
    "Schedule",
    "ScheduleCache",
    "SendOp",
    "allgather",
    "alltoall",
    "alltoall_scratch_bytes",
    "balanced_counts",
    "barrier",
    "bcast",
    "bcast_tree",
    "build_hier_ialltoall",
    "build_hier_ibcast",
    "build_iallgather",
    "build_iallgatherv",
    "build_iallreduce",
    "build_ialltoall",
    "build_ibcast",
    "build_ireduce",
    "build_ireduce_scatter",
    "compiled_hier_ialltoall",
    "compiled_hier_ibcast",
    "compiled_iallgather",
    "compiled_iallgatherv",
    "compiled_iallreduce",
    "compiled_ialltoall",
    "compiled_ibcast",
    "compiled_ireduce",
    "compiled_ireduce_scatter",
    "ft_collective",
    "groups_for_comm",
    "hier_alltoall_scratch_bytes",
    "hier_bcast_tree",
    "make_buffers",
    "reduce",
    "resolve",
    "schedule_cache_stats",
    "start_iallgather",
    "start_iallgatherv",
    "start_iallreduce",
    "start_ialltoall",
    "start_ibarrier",
    "start_ibcast",
    "start_ireduce",
    "start_ireduce_scatter",
]
