"""Collective operation schedules (the LibNBC design, §III-B of the paper).

A :class:`Schedule` is the per-rank recipe for one collective operation:
a list of **rounds**, each holding point-to-point and local operations.
A round only starts once every operation of the previous round has
completed locally — the LibNBC *barrier* semantics.  Execution of a
schedule is non-blocking and driven incrementally by the progress engine
in :mod:`repro.nbc.request`.

Buffer handling
---------------
Schedules may run *size-only* (no payload; used by large performance
sweeps) or *with data* (used by correctness tests and the FFT kernel).
Operations reference buffers symbolically through ``(name, offset,
nbytes)`` byte-range specs resolved against a ``buffers`` dict of 1-D
``uint8`` arrays at execution time, so the same schedule object serves
both modes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ScheduleError

__all__ = ["BufSpec", "SendOp", "RecvOp", "CopyOp", "CombineOp", "Schedule", "resolve"]

#: symbolic byte-range into a named buffer: ``(buffer_name, offset, nbytes)``
BufSpec = tuple[str, int, int]


def resolve(buffers: Optional[dict], spec: Optional[BufSpec]) -> Optional[np.ndarray]:
    """Resolve a :data:`BufSpec` to a ``uint8`` view, or None in size-only mode."""
    if buffers is None or spec is None:
        return None
    name, offset, nbytes = spec
    try:
        buf = buffers[name]
    except KeyError:
        raise ScheduleError(f"schedule references unknown buffer {name!r}") from None
    if buf is None:
        return None
    view = buf[offset : offset + nbytes]
    if view.nbytes != nbytes:
        raise ScheduleError(
            f"buffer {name!r} too small: need [{offset}:{offset + nbytes}), "
            f"have {buf.nbytes} bytes"
        )
    return view


class SendOp:
    """Send ``nbytes`` to communicator-local ``peer`` (tag offset ``tagoff``)."""

    __slots__ = ("peer", "nbytes", "tagoff", "src")
    kind = "send"

    def __init__(self, peer: int, nbytes: int, tagoff: int,
                 src: Optional[BufSpec] = None):
        self.peer = peer
        self.nbytes = nbytes
        self.tagoff = tagoff
        self.src = src

    def __repr__(self) -> str:  # pragma: no cover
        return f"Send(->{self.peer}, {self.nbytes}B, tag+{self.tagoff})"


class RecvOp:
    """Receive ``nbytes`` from communicator-local ``peer``."""

    __slots__ = ("peer", "nbytes", "tagoff", "dst")
    kind = "recv"

    def __init__(self, peer: int, nbytes: int, tagoff: int,
                 dst: Optional[BufSpec] = None):
        self.peer = peer
        self.nbytes = nbytes
        self.tagoff = tagoff
        self.dst = dst

    def __repr__(self) -> str:  # pragma: no cover
        return f"Recv(<-{self.peer}, {self.nbytes}B, tag+{self.tagoff})"


class CopyOp:
    """Local memcpy of ``nbytes`` (pack/unpack); costs CPU time."""

    __slots__ = ("nbytes", "src", "dst")
    kind = "copy"

    def __init__(self, nbytes: int, src: Optional[BufSpec] = None,
                 dst: Optional[BufSpec] = None):
        self.nbytes = nbytes
        self.src = src
        self.dst = dst

    def __repr__(self) -> str:  # pragma: no cover
        return f"Copy({self.nbytes}B)"


class CombineOp:
    """Local reduction: ``dst = dst (op) src`` elementwise.

    ``dtype`` names the element type the byte ranges are reinterpreted
    as; ``op`` is one of ``"sum"``, ``"prod"``, ``"max"``, ``"min"``.
    """

    __slots__ = ("nbytes", "src", "dst", "dtype", "op")
    kind = "combine"

    _OPS = {
        "sum": np.add,
        "prod": np.multiply,
        "max": np.maximum,
        "min": np.minimum,
    }

    def __init__(self, nbytes: int, src: Optional[BufSpec], dst: Optional[BufSpec],
                 dtype: str = "float64", op: str = "sum"):
        if op not in self._OPS:
            raise ScheduleError(f"unknown reduction op {op!r}")
        self.nbytes = nbytes
        self.src = src
        self.dst = dst
        self.dtype = dtype
        self.op = op

    def apply(self, src_view: np.ndarray, dst_view: np.ndarray) -> None:
        """Perform the combine on resolved uint8 views."""
        a = dst_view.view(self.dtype)
        b = src_view.view(self.dtype)
        self._OPS[self.op](a, b, out=a)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Combine({self.op}, {self.nbytes}B, {self.dtype})"


class Schedule:
    """The per-rank plan of one collective operation.

    Build one with :meth:`round` + the add methods, or via the algorithm
    builders in :mod:`repro.nbc`.  ``tag_span`` is the number of distinct
    tag offsets the schedule uses; the executing request reserves that
    many tags on the communicator.
    """

    __slots__ = ("rounds", "name", "_open", "uniform_tag_span")

    def __init__(self, name: str = "coll"):
        self.name = name
        self.rounds: list[list] = []
        self._open = False
        #: rank-independent tag span, set by algorithm builders whose
        #: per-rank schedules use different numbers of tag offsets
        #: (e.g. reduce trees: leaves only send once).  All ranks must
        #: reserve the *same* span per collective or their tag counters
        #: diverge and later collectives mismatch.
        self.uniform_tag_span: Optional[int] = None

    # -- construction ---------------------------------------------------

    def round(self) -> "Schedule":
        """Start a new round (implicit local barrier before it)."""
        self.rounds.append([])
        self._open = True
        return self

    def _append(self, op) -> None:
        if not self._open:
            self.round()
        self.rounds[-1].append(op)

    def send(self, peer: int, nbytes: int, tagoff: int = 0,
             src: Optional[BufSpec] = None) -> "Schedule":
        self._append(SendOp(peer, nbytes, tagoff, src))
        return self

    def recv(self, peer: int, nbytes: int, tagoff: int = 0,
             dst: Optional[BufSpec] = None) -> "Schedule":
        self._append(RecvOp(peer, nbytes, tagoff, dst))
        return self

    def copy(self, nbytes: int, src: Optional[BufSpec] = None,
             dst: Optional[BufSpec] = None) -> "Schedule":
        self._append(CopyOp(nbytes, src, dst))
        return self

    def combine(self, nbytes: int, src: Optional[BufSpec] = None,
                dst: Optional[BufSpec] = None, dtype: str = "float64",
                op: str = "sum") -> "Schedule":
        self._append(CombineOp(nbytes, src, dst, dtype, op))
        return self

    # -- introspection ----------------------------------------------------

    @property
    def nrounds(self) -> int:
        return len(self.rounds)

    @property
    def tag_span(self) -> int:
        """Tag offsets to reserve on the communicator.

        Uses :attr:`uniform_tag_span` when the builder provided one;
        otherwise the local maximum tagoff + 1 (correct whenever the
        algorithm uses the same offsets on every rank).
        """
        if self.uniform_tag_span is not None:
            return self.uniform_tag_span
        span = 1
        for rnd in self.rounds:
            for op in rnd:
                if op.kind in ("send", "recv") and op.tagoff + 1 > span:
                    span = op.tagoff + 1
        return span

    def count_ops(self, kind: Optional[str] = None) -> int:
        """Total operations (optionally of one kind) across all rounds."""
        return sum(
            1
            for rnd in self.rounds
            for op in rnd
            if kind is None or op.kind == kind
        )

    def total_send_bytes(self) -> int:
        """Bytes this rank injects into the network over the whole schedule."""
        return sum(
            op.nbytes for rnd in self.rounds for op in rnd if op.kind == "send"
        )

    def validate(self) -> None:
        """Sanity-check the schedule structure.

        Raises :class:`ScheduleError` on empty rounds or negative sizes.
        """
        for i, rnd in enumerate(self.rounds):
            if not rnd:
                raise ScheduleError(f"{self.name}: round {i} is empty")
            for op in rnd:
                if op.nbytes < 0:
                    raise ScheduleError(f"{self.name}: negative size in {op!r}")
                if op.kind in ("send", "recv") and op.peer < 0:
                    raise ScheduleError(f"{self.name}: negative peer in {op!r}")

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Schedule {self.name!r}: {self.nrounds} rounds, "
            f"{self.count_ops()} ops>"
        )
