"""Collective operation schedules (the LibNBC design, §III-B of the paper).

A :class:`Schedule` is the per-rank recipe for one collective operation:
a list of **rounds**, each holding point-to-point and local operations.
A round only starts once every operation of the previous round has
completed locally — the LibNBC *barrier* semantics.  Execution of a
schedule is non-blocking and driven incrementally by the progress engine
in :mod:`repro.nbc.request`.

Buffer handling
---------------
Schedules may run *size-only* (no payload; used by large performance
sweeps) or *with data* (used by correctness tests and the FFT kernel).
Operations reference buffers symbolically through ``(name, offset,
nbytes)`` byte-range specs resolved against a ``buffers`` dict of 1-D
``uint8`` arrays at execution time, so the same schedule object serves
both modes.

Compiled schedules & the schedule cache
---------------------------------------
Building a schedule is pure: the op list depends only on the problem
geometry ``(operation, algorithm, nranks, rank, nbytes, segsize,
fanout, ...)``, never on run-time state.  All per-run mutable state
(request handles, the round cursor, pending-op counts) lives in
:class:`~repro.nbc.request.NBCRequest`, so one plan can back any number
of concurrent or successive requests.  A tuning run replays the same
handful of plans for hundreds of iterations; :class:`CompiledSchedule`
freezes a built schedule into an immutable, shareable plan (rounds as
tuples, ``tag_span`` precomputed) and :class:`ScheduleCache` memoizes
plans under their geometry key with hit/miss statistics.  The builders
expose ``compiled_*`` entry points that go through the process-global
:data:`SCHEDULE_CACHE`.
"""

from __future__ import annotations

import os
from typing import Callable, Optional

import numpy as np

from ..errors import ScheduleError

__all__ = [
    "BufSpec",
    "SendOp",
    "RecvOp",
    "CopyOp",
    "CombineOp",
    "Schedule",
    "CompiledSchedule",
    "ScheduleCache",
    "SCHEDULE_CACHE",
    "schedule_cache_stats",
    "resolve",
]

#: symbolic byte-range into a named buffer: ``(buffer_name, offset, nbytes)``
BufSpec = tuple[str, int, int]


def resolve(buffers: Optional[dict], spec: Optional[BufSpec]) -> Optional[np.ndarray]:
    """Resolve a :data:`BufSpec` to a ``uint8`` view, or None in size-only mode."""
    if buffers is None or spec is None:
        return None
    name, offset, nbytes = spec
    try:
        buf = buffers[name]
    except KeyError:
        raise ScheduleError(f"schedule references unknown buffer {name!r}") from None
    if buf is None:
        return None
    view = buf[offset : offset + nbytes]
    if view.nbytes != nbytes:
        raise ScheduleError(
            f"buffer {name!r} too small: need [{offset}:{offset + nbytes}), "
            f"have {buf.nbytes} bytes"
        )
    return view


class SendOp:
    """Send ``nbytes`` to communicator-local ``peer`` (tag offset ``tagoff``)."""

    __slots__ = ("peer", "nbytes", "tagoff", "src")
    kind = "send"

    def __init__(self, peer: int, nbytes: int, tagoff: int,
                 src: Optional[BufSpec] = None):
        self.peer = peer
        self.nbytes = nbytes
        self.tagoff = tagoff
        self.src = src

    def __repr__(self) -> str:  # pragma: no cover
        return f"Send(->{self.peer}, {self.nbytes}B, tag+{self.tagoff})"


class RecvOp:
    """Receive ``nbytes`` from communicator-local ``peer``."""

    __slots__ = ("peer", "nbytes", "tagoff", "dst")
    kind = "recv"

    def __init__(self, peer: int, nbytes: int, tagoff: int,
                 dst: Optional[BufSpec] = None):
        self.peer = peer
        self.nbytes = nbytes
        self.tagoff = tagoff
        self.dst = dst

    def __repr__(self) -> str:  # pragma: no cover
        return f"Recv(<-{self.peer}, {self.nbytes}B, tag+{self.tagoff})"


class CopyOp:
    """Local memcpy of ``nbytes`` (pack/unpack); costs CPU time."""

    __slots__ = ("nbytes", "src", "dst")
    kind = "copy"

    def __init__(self, nbytes: int, src: Optional[BufSpec] = None,
                 dst: Optional[BufSpec] = None):
        self.nbytes = nbytes
        self.src = src
        self.dst = dst

    def __repr__(self) -> str:  # pragma: no cover
        return f"Copy({self.nbytes}B)"


class CombineOp:
    """Local reduction: ``dst = dst (op) src`` elementwise.

    ``dtype`` names the element type the byte ranges are reinterpreted
    as; ``op`` is one of ``"sum"``, ``"prod"``, ``"max"``, ``"min"``.
    """

    __slots__ = ("nbytes", "src", "dst", "dtype", "op")
    kind = "combine"

    _OPS = {
        "sum": np.add,
        "prod": np.multiply,
        "max": np.maximum,
        "min": np.minimum,
    }

    def __init__(self, nbytes: int, src: Optional[BufSpec], dst: Optional[BufSpec],
                 dtype: str = "float64", op: str = "sum"):
        if op not in self._OPS:
            raise ScheduleError(f"unknown reduction op {op!r}")
        self.nbytes = nbytes
        self.src = src
        self.dst = dst
        self.dtype = dtype
        self.op = op

    def apply(self, src_view: np.ndarray, dst_view: np.ndarray) -> None:
        """Perform the combine on resolved uint8 views."""
        a = dst_view.view(self.dtype)
        b = src_view.view(self.dtype)
        self._OPS[self.op](a, b, out=a)

    def __repr__(self) -> str:  # pragma: no cover
        return f"Combine({self.op}, {self.nbytes}B, {self.dtype})"


class Schedule:
    """The per-rank plan of one collective operation.

    Build one with :meth:`round` + the add methods, or via the algorithm
    builders in :mod:`repro.nbc`.  ``tag_span`` is the number of distinct
    tag offsets the schedule uses; the executing request reserves that
    many tags on the communicator.
    """

    __slots__ = ("rounds", "name", "_open", "uniform_tag_span")

    def __init__(self, name: str = "coll"):
        self.name = name
        self.rounds: list[list] = []
        self._open = False
        #: rank-independent tag span, set by algorithm builders whose
        #: per-rank schedules use different numbers of tag offsets
        #: (e.g. reduce trees: leaves only send once).  All ranks must
        #: reserve the *same* span per collective or their tag counters
        #: diverge and later collectives mismatch.
        self.uniform_tag_span: Optional[int] = None

    # -- construction ---------------------------------------------------

    def round(self) -> "Schedule":
        """Start a new round (implicit local barrier before it)."""
        self.rounds.append([])
        self._open = True
        return self

    def _append(self, op) -> None:
        if not self._open:
            self.round()
        self.rounds[-1].append(op)

    def send(self, peer: int, nbytes: int, tagoff: int = 0,
             src: Optional[BufSpec] = None) -> "Schedule":
        self._append(SendOp(peer, nbytes, tagoff, src))
        return self

    def recv(self, peer: int, nbytes: int, tagoff: int = 0,
             dst: Optional[BufSpec] = None) -> "Schedule":
        self._append(RecvOp(peer, nbytes, tagoff, dst))
        return self

    def copy(self, nbytes: int, src: Optional[BufSpec] = None,
             dst: Optional[BufSpec] = None) -> "Schedule":
        self._append(CopyOp(nbytes, src, dst))
        return self

    def combine(self, nbytes: int, src: Optional[BufSpec] = None,
                dst: Optional[BufSpec] = None, dtype: str = "float64",
                op: str = "sum") -> "Schedule":
        self._append(CombineOp(nbytes, src, dst, dtype, op))
        return self

    # -- introspection ----------------------------------------------------

    @property
    def nrounds(self) -> int:
        return len(self.rounds)

    @property
    def tag_span(self) -> int:
        """Tag offsets to reserve on the communicator.

        Uses :attr:`uniform_tag_span` when the builder provided one;
        otherwise the local maximum tagoff + 1 (correct whenever the
        algorithm uses the same offsets on every rank).
        """
        if self.uniform_tag_span is not None:
            return self.uniform_tag_span
        span = 1
        for rnd in self.rounds:
            for op in rnd:
                if op.kind in ("send", "recv") and op.tagoff + 1 > span:
                    span = op.tagoff + 1
        return span

    def count_ops(self, kind: Optional[str] = None) -> int:
        """Total operations (optionally of one kind) across all rounds."""
        return sum(
            1
            for rnd in self.rounds
            for op in rnd
            if kind is None or op.kind == kind
        )

    def total_send_bytes(self) -> int:
        """Bytes this rank injects into the network over the whole schedule."""
        return sum(
            op.nbytes for rnd in self.rounds for op in rnd if op.kind == "send"
        )

    def validate(self) -> None:
        """Sanity-check the schedule structure.

        Raises :class:`ScheduleError` on empty rounds or negative sizes.
        """
        for i, rnd in enumerate(self.rounds):
            if not rnd:
                raise ScheduleError(f"{self.name}: round {i} is empty")
            for op in rnd:
                if op.nbytes < 0:
                    raise ScheduleError(f"{self.name}: negative size in {op!r}")
                if op.kind in ("send", "recv") and op.peer < 0:
                    raise ScheduleError(f"{self.name}: negative peer in {op!r}")

    def compile(self, key: Optional[tuple] = None) -> "CompiledSchedule":
        """Freeze this schedule into an immutable :class:`CompiledSchedule`.

        Validates first — a cached plan is instantiated many times, so a
        malformed schedule must fail at compile time, not mid-run.
        """
        self.validate()
        return CompiledSchedule(self, key=key)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<Schedule {self.name!r}: {self.nrounds} rounds, "
            f"{self.count_ops()} ops>"
        )


class CompiledSchedule:
    """An immutable, shareable execution plan for one collective.

    Structurally a frozen :class:`Schedule`: the rounds are tuples of
    the same op objects and ``tag_span`` is precomputed, so
    :class:`~repro.nbc.request.NBCRequest` executes either
    interchangeably (and bit-identically — the ops themselves are
    read-only during execution).  Because nothing in the plan mutates at
    run time, a single instance can back any number of requests across
    ranks, iterations and simulations of the same geometry.
    """

    __slots__ = ("name", "rounds", "tag_span", "key")

    def __init__(self, schedule: Schedule, key: Optional[tuple] = None):
        self.name = schedule.name
        self.rounds: tuple[tuple, ...] = tuple(tuple(rnd) for rnd in schedule.rounds)
        self.tag_span: int = schedule.tag_span
        #: the cache key this plan was compiled under (None if uncached)
        self.key = key

    @property
    def nrounds(self) -> int:
        return len(self.rounds)

    def count_ops(self, kind: Optional[str] = None) -> int:
        """Total operations (optionally of one kind) across all rounds."""
        return sum(
            1
            for rnd in self.rounds
            for op in rnd
            if kind is None or op.kind == kind
        )

    def total_send_bytes(self) -> int:
        """Bytes this rank injects into the network over the whole schedule."""
        return sum(
            op.nbytes for rnd in self.rounds for op in rnd if op.kind == "send"
        )

    def validate(self) -> None:
        """No-op: the plan was validated when compiled."""

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<CompiledSchedule {self.name!r}: {self.nrounds} rounds, "
            f"{self.count_ops()} ops>"
        )


class ScheduleCache:
    """Memoizes compiled plans under their geometry key.

    ``get(key, builder)`` returns the cached :class:`CompiledSchedule`
    for ``key`` or builds, compiles and stores one.  With the cache
    disabled the builder's raw mutable :class:`Schedule` is returned —
    exactly the pre-cache behavior, which the perf harness uses as its
    A/B baseline.

    The store is a plain dict (the lookup is on a tuning hot path); when
    it would exceed ``maxsize`` distinct keys it is flushed wholesale —
    a realistic tuning run holds well under a thousand plans, so a flush
    signals key churn, not a working set worth LRU bookkeeping.
    """

    def __init__(self, maxsize: int = 4096, enabled: bool = True):
        if maxsize <= 0:
            raise ScheduleError(f"cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self.enabled = enabled
        self._store: dict[tuple, CompiledSchedule] = {}
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    def get(self, key: tuple, builder: Callable[[], Schedule]):
        """The compiled plan for ``key``, building it on a miss."""
        if not self.enabled:
            self.misses += 1
            return builder()
        plan = self._store.get(key)
        if plan is not None:
            self.hits += 1
            return plan
        self.misses += 1
        plan = builder().compile(key)
        store = self._store
        if len(store) >= self.maxsize:
            store.clear()
            self.flushes += 1
        store[key] = plan
        return plan

    def clear(self) -> None:
        """Drop all cached plans (statistics are kept)."""
        self._store.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss/flush counters (cached plans are kept)."""
        self.hits = 0
        self.misses = 0
        self.flushes = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._store)

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._store),
            "flushes": self.flushes,
            "hit_rate": self.hit_rate,
            "enabled": self.enabled,
        }

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"<ScheduleCache {len(self._store)} plans, "
            f"{self.hits} hits / {self.misses} misses>"
        )


#: process-global plan cache used by the ``compiled_*`` builder entry
#: points.  ``REPRO_SCHEDULE_CACHE=0`` disables it (A/B baselines).
SCHEDULE_CACHE = ScheduleCache(
    enabled=os.environ.get("REPRO_SCHEDULE_CACHE", "1") not in ("", "0", "false")
)


def schedule_cache_stats() -> dict:
    """Statistics of the process-global schedule cache."""
    return SCHEDULE_CACHE.stats()
