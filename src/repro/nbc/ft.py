"""Fault-tolerant execution of NBC collectives (ULFM recovery pattern).

A non-blocking collective schedule is built against a fixed communicator
size, so a rank crash mid-collective leaves the survivors holding rounds
that can never complete.  :func:`ft_collective` wraps any ``start_*``
builder from :mod:`repro.nbc.coll` in the standard User-Level Failure
Mitigation recovery loop:

1. run the collective, catching :class:`~repro.errors.RankFailedError` /
   :class:`~repro.errors.CommRevokedError`;
2. a failed member **revokes** the communicator, which interrupts every
   other member's pending operations so nobody hangs on the half-dead
   collective;
3. all survivors run a fault-tolerant **agree** on the outcome — the
   uniform-completion test: only if *every* live member finished cleanly
   is the collective's result trusted (a member may complete locally,
   e.g. a broadcast subtree, while others saw the failure);
4. on a non-uniform outcome, everybody **shrinks** to the same dense
   survivor communicator and the schedule is rebuilt against it —
   in-flight ``Ibcast``/``Ialltoall`` are thereby retried post-repair.

Stale messages of an aborted attempt can never match the retry: the
shrunken communicator has a fresh ``comm_id``, and within one
communicator every attempt reserves a fresh collective tag block.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..errors import CommRevokedError, RankFailedError
from ..sim.mpi import MPIContext, SimComm
from ..sim.process import Wait
from .request import NBCRequest

__all__ = ["ft_collective"]


def ft_collective(
    ctx: MPIContext,
    start: Callable[[MPIContext, SimComm], NBCRequest],
    comm: Optional[SimComm] = None,
    max_repairs: Optional[int] = None,
):
    """Run ``start(ctx, comm)`` with ULFM-style repair (generator).

    ``start`` must build *and post* the collective against the
    communicator it is given (e.g. ``lambda ctx, comm:
    start_ibcast(ctx, nbytes, comm=comm)``) — it is re-invoked against
    the shrunken communicator after every repair.  Every live member of
    ``comm`` must execute this call collectively.

    Returns ``(request, comm, repairs)``: the completed request, the
    communicator it finally completed on (the original one if no repair
    was needed), and the number of repairs performed.  Raises the last
    failure when ``max_repairs`` is exhausted.

    Use as ``req, comm, repairs = yield from ft_collective(ctx, ...)``.
    """
    comm = comm or ctx.comm_world
    repairs = 0
    last_exc: Optional[BaseException] = None
    while True:
        if comm.revoked:
            # a concurrent recovery already invalidated this communicator
            comm = comm.shrink()
        req = None
        ok = 1
        try:
            req = start(ctx, comm)
            yield Wait(req)
        except (RankFailedError, CommRevokedError) as exc:
            ok = 0
            last_exc = exc
            # interrupt everyone still blocked on the dead collective
            comm.revoke(ctx)
        # uniform-completion test: all survivors must have finished
        flag = yield from comm.agree(ctx, ok)
        if flag:
            return req, comm, repairs
        repairs += 1
        if max_repairs is not None and repairs > max_repairs:
            raise last_exc if last_exc is not None else RankFailedError(
                f"rank {ctx.rank}: collective failed on a peer and "
                f"max_repairs={max_repairs} is exhausted",
                ctx.dead_ranks,
            )
        comm.revoke(ctx)
        comm = comm.shrink()
