"""Non-blocking reduce-scatter schedules.

``Reduce_scatter`` with equal blocks: every rank contributes a ``P*m``
byte vector in ``"data"``; rank *i* ends with the fully reduced *i*-th
``m``-byte block in ``"recv"``.  Two candidates:

* **pairwise** — ``P-1`` balanced exchange rounds; round *r* sends the
  block owned by rank ``(rank+r)`` directly to it and combines the
  contribution arriving from ``(rank-r)`` — each rank only ever reduces
  its own block (Jocksch et al.'s pairwise reduce_scatter);
* **reduce_then_scatter** — the composition mock-up: a binomial reduce
  of the whole vector to rank 0 followed by a linear scatter of the
  blocks.  Moves ``log2(P)`` times the data but pipelines well on fat
  links; also the guideline bound the pairwise candidate must beat.

Extra buffers: ``"acc"`` and ``"in"`` staging (``P*m`` bytes covers
both candidates).  Like all reductions, the combine order is
deterministic per rank but differs between candidates, so exactness
tests should use integer-valued payloads.
"""

from __future__ import annotations

from ..errors import ScheduleError
from .ireduce import build_ireduce
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = [
    "REDUCE_SCATTER_ALGORITHMS",
    "build_ireduce_scatter",
    "compiled_ireduce_scatter",
]

REDUCE_SCATTER_ALGORITHMS = ("pairwise", "reduce_then_scatter")


def build_ireduce_scatter(
    size: int,
    rank: int,
    m: int,
    algorithm: str,
    dtype: str = "float64",
    op: str = "sum",
) -> Schedule:
    """Build this rank's schedule for an equal-block reduce-scatter."""
    if size <= 0 or not 0 <= rank < size:
        raise ScheduleError(
            f"bad reduce_scatter geometry size={size} rank={rank}")
    if m < 0:
        raise ScheduleError(f"negative block size {m}")
    if algorithm == "pairwise":
        return _pairwise(size, rank, m, dtype, op)
    if algorithm == "reduce_then_scatter":
        return _reduce_then_scatter(size, rank, m, dtype, op)
    raise ScheduleError(
        f"unknown reduce_scatter algorithm {algorithm!r}; "
        f"expected one of {REDUCE_SCATTER_ALGORITHMS}")


def _pairwise(size: int, rank: int, m: int, dtype: str, op: str) -> Schedule:
    sched = Schedule(name="ireduce_scatter[pairwise]")
    sched.uniform_tag_span = max(1, size - 1)
    sched.round()
    sched.copy(m, src=("data", rank * m, m), dst=("acc", 0, m))
    for r in range(1, size):
        sendto = (rank + r) % size
        recvfrom = (rank - r) % size
        sched.round()
        sched.recv(recvfrom, m, tagoff=r - 1, dst=("in", 0, m))
        sched.send(sendto, m, tagoff=r - 1, src=("data", sendto * m, m))
        sched.round()
        sched.combine(m, src=("in", 0, m), dst=("acc", 0, m),
                      dtype=dtype, op=op)
    sched.round()
    sched.copy(m, src=("acc", 0, m), dst=("recv", 0, m))
    return sched


def _reduce_then_scatter(size: int, rank: int, m: int, dtype: str,
                         op: str) -> Schedule:
    # the binomial reduce leaves the fully reduced vector in rank 0's
    # "data"; one extra round scatters the blocks
    sched = build_ireduce(size, rank, 0, size * m, "binomial",
                          dtype=dtype, op=op)
    sched.name = "ireduce_scatter[reduce_then_scatter]"
    span = sched.tag_span
    sched.uniform_tag_span = span + 1
    sched.round()
    if rank == 0:
        for peer in range(1, size):
            sched.send(peer, m, tagoff=span, src=("data", peer * m, m))
        sched.copy(m, src=("data", 0, m), dst=("recv", 0, m))
    else:
        sched.recv(0, m, tagoff=span, dst=("recv", 0, m))
    return sched


def compiled_ireduce_scatter(size: int, rank: int, m: int, algorithm: str,
                             dtype: str = "float64", op: str = "sum"):
    """Cached compiled plan for :func:`build_ireduce_scatter`."""
    return SCHEDULE_CACHE.get(
        ("reduce_scatter", algorithm, size, rank, m, 0, 0, dtype, op),
        lambda: build_ireduce_scatter(size, rank, m, algorithm,
                                      dtype=dtype, op=op),
    )
