"""Hierarchical (leader-based two-level) collective schedules.

On SMP clusters the network is two-tier: ranks on one node talk through
shared memory, ranks on different nodes through the interconnect.  The
flat trees of :mod:`repro.nbc.ibcast` ignore this; the hierarchical
variants here route all inter-node traffic through one *leader* rank per
node (Jocksch et al.; the Wickramasinghe & Lumsdaine survey), so each
payload crosses the network once per node instead of once per rank:

* :func:`build_hier_ibcast` — segmented broadcast down a two-level
  tree: binomial over the node leaders, then leader → node members;
* :func:`build_hier_ialltoall` — gather to the leader, pairwise
  exchange of node-aggregated blocks between leaders, scatter to the
  members.

Groups
------
Every builder takes ``groups``: a partition of the communicator's local
ranks into per-node tuples, ordered by each group's smallest member.
:func:`groups_for_comm` derives it from the simulated topology; tests
pass hand-made partitions (uneven leaders, non-power-of-two counts)
directly.  The partition is part of the schedule-cache key — plans are
pure functions of ``(geometry, groups)``.
"""

from __future__ import annotations

from ..errors import ScheduleError
from .ibcast import BINOMIAL, bcast_tree, emit_pipelined_bcast, segment_bounds
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = [
    "groups_for_comm",
    "validate_groups",
    "hier_bcast_tree",
    "build_hier_ibcast",
    "compiled_hier_ibcast",
    "hier_alltoall_scratch_bytes",
    "build_hier_ialltoall",
    "compiled_hier_ialltoall",
]

Groups = tuple[tuple[int, ...], ...]


def groups_for_comm(comm, topology) -> Groups:
    """Partition of ``comm``'s local ranks by hosting node.

    Groups appear in order of their smallest local rank and each group
    lists its members ascending, so the result is canonical for a given
    placement — usable directly as (part of) a schedule-cache key.

    Memoized on the communicator: both inputs are immutable (a revoked
    communicator is replaced by :meth:`~repro.sim.mpi.SimComm.shrink`,
    never mutated), and every candidate maker recomputing the O(P) scan
    per invocation dominates large-P runs otherwise.
    """
    cached = getattr(comm, "_node_groups", None)
    if cached is not None and cached[0] is topology:
        return cached[1]
    by_node: dict[int, list[int]] = {}
    for local in range(comm.size):
        node = topology.node_of(comm.world_rank(local))
        by_node.setdefault(node, []).append(local)
    groups = tuple(tuple(members) for members in by_node.values())
    comm._node_groups = (topology, groups)
    return groups


def validate_groups(size: int, groups: Groups) -> None:
    """Check that ``groups`` is a partition of ``range(size)``."""
    seen: list[int] = []
    for g in groups:
        if not g:
            raise ScheduleError("empty group in hierarchical partition")
        seen.extend(g)
    if sorted(seen) != list(range(size)):
        raise ScheduleError(
            f"groups {groups!r} are not a partition of {size} ranks")


def _group_index(groups: Groups, rank: int) -> int:
    for gi, g in enumerate(groups):
        if rank in g:
            return gi
    raise ScheduleError(f"rank {rank} not in any group")


def hier_bcast_tree(groups: Groups, rank: int,
                    root: int) -> tuple[int, list[int]]:
    """Parent and children of ``rank`` in the two-level broadcast tree.

    The leader of each group is its first member, except the root's
    group whose leader is the root itself (the data starts there, so
    promoting it saves one hop).  Leaders form a binomial tree rooted at
    the root's leader; every other member hangs directly off its
    leader — within a node the "tree" is flat, shared memory makes a
    deeper shape pointless.  Leader-children precede member-children so
    inter-node forwarding (the long pole) is initiated first.
    """
    gidx = _group_index(groups, rank)
    ridx = _group_index(groups, root)
    leaders = [root if gi == ridx else g[0] for gi, g in enumerate(groups)]
    leader = leaders[gidx]
    if rank != leader:
        return leader, []
    nl = len(groups)
    v = (gidx - ridx) % nl
    parent_v, children_v = bcast_tree(nl, v, BINOMIAL)
    parent = -1 if parent_v == -1 else leaders[(parent_v + ridx) % nl]
    children = [leaders[(cv + ridx) % nl] for cv in children_v]
    children += [r for r in groups[gidx] if r != leader]
    return parent, children


def build_hier_ibcast(
    size: int,
    rank: int,
    root: int,
    nbytes: int,
    segsize: int,
    groups: Groups,
) -> Schedule:
    """Build this rank's schedule for a hierarchical segmented broadcast.

    Buffer contract is identical to :func:`~repro.nbc.ibcast.build_ibcast`
    (payload in ``"data"`` on every rank); only the tree shape differs,
    so the flat and hierarchical variants are drop-in interchangeable
    tuning candidates.
    """
    if size <= 0 or not 0 <= rank < size or not 0 <= root < size:
        raise ScheduleError(
            f"bad bcast geometry size={size} rank={rank} root={root}")
    validate_groups(size, groups)
    seg_bounds = segment_bounds(nbytes, segsize)
    sched = Schedule(name=f"ibcast[hier,seg={segsize}]")
    if size == 1:
        return sched
    parent, children = hier_bcast_tree(groups, rank, root)
    return emit_pipelined_bcast(sched, parent, children, seg_bounds)


def compiled_hier_ibcast(size: int, rank: int, root: int, nbytes: int,
                         segsize: int, groups: Groups):
    """Cached compiled plan for :func:`build_hier_ibcast`."""
    return SCHEDULE_CACHE.get(
        ("bcast", "hier", size, rank, nbytes, segsize, groups, root),
        lambda: build_hier_ibcast(size, rank, root, nbytes, segsize, groups),
    )


# ---------------------------------------------------------------------------
# hierarchical all-to-all
# ---------------------------------------------------------------------------

def hier_alltoall_scratch_bytes(size: int, rank: int, m: int,
                                groups: Groups) -> dict[str, int]:
    """Scratch buffers this rank needs besides ``"send"``/``"recv"``.

    Only leaders stage data: ``"gather"`` holds every member's full send
    buffer, ``"scatter"`` accumulates every member's full result, and
    ``"so"``/``"si"`` are the pack/unpack areas for one inter-leader
    exchange (sized for the largest peer group).
    """
    gidx = _group_index(groups, rank)
    if rank != groups[gidx][0]:
        return {}
    gsz = len(groups[gidx])
    maxg = max(len(g) for g in groups)
    return {
        "gather": gsz * size * m,
        "scatter": gsz * size * m,
        "so": gsz * maxg * m,
        "si": gsz * maxg * m,
    }


def build_hier_ialltoall(size: int, rank: int, m: int,
                         groups: Groups) -> Schedule:
    """Build this rank's schedule for a leader-based all-to-all.

    Three phases, all within LibNBC round semantics:

    1. **gather** — every member ships its full ``"send"`` buffer
       (``P*m`` bytes) to the node leader;
    2. **exchange** — leaders run a pairwise exchange over the node
       count: round *r* packs the blocks destined for node ``g+r`` and
       trades one aggregated ``|g|*|h|*m``-byte message with that node's
       leader (round 0 is the node-local rearrangement, pure copies);
    3. **scatter** — the leader returns each member's assembled ``P*m``
       result, landing in ``"recv"``.

    Each payload block crosses the network once per *node pair* instead
    of once per rank pair — the win (and the candidate the tuner should
    pick) when many ranks share a node and per-message latency
    dominates, e.g. small blocks at high core counts.
    """
    if size <= 0 or not 0 <= rank < size:
        raise ScheduleError(f"bad alltoall geometry size={size} rank={rank}")
    if m < 0:
        raise ScheduleError(f"negative block size {m}")
    validate_groups(size, groups)
    ngroups = len(groups)
    sched = Schedule(name="ialltoall[hier]")
    # tagoffs: 0 = gather, 1 = scatter, 2+r = inter-leader round r; the
    # span must match on every rank, leader or not
    sched.uniform_tag_span = 2 + ngroups
    if size == 1:
        sched.round()
        sched.copy(m, src=("send", 0, m), dst=("recv", 0, m))
        return sched
    gidx = _group_index(groups, rank)
    members = groups[gidx]
    leader = members[0]
    gsz = len(members)
    full = size * m

    if rank != leader:
        sched.round()
        sched.send(leader, full, tagoff=0, src=("send", 0, full))
        sched.round()
        sched.recv(leader, full, tagoff=1, dst=("recv", 0, full))
        return sched

    # -- phase 1: gather every member's send buffer -----------------------
    sched.round()
    sched.copy(full, src=("send", 0, full), dst=("gather", 0, full))
    for k in range(1, gsz):
        sched.recv(members[k], full, tagoff=0,
                   dst=("gather", k * full, full))

    # -- phase 2: pairwise exchange of node-aggregated blocks -------------
    # gather layout: slot k = member k's send buffer; scatter layout:
    # slot q = member q's assembled recv buffer
    for r in range(ngroups):
        if r == 0:
            # node-local traffic: rearrange gather -> scatter directly
            sched.round()
            for k in range(gsz):
                for q in range(gsz):
                    sched.copy(m,
                               src=("gather", k * full + members[q] * m, m),
                               dst=("scatter", q * full + members[k] * m, m))
            continue
        to_grp = groups[(gidx + r) % ngroups]
        from_grp = groups[(gidx - r) % ngroups]
        # pack the blocks every local member addresses to the target node
        sched.round()
        for k in range(gsz):
            for q, j in enumerate(to_grp):
                sched.copy(m, src=("gather", k * full + j * m, m),
                           dst=("so", (k * len(to_grp) + q) * m, m))
        sched.round()
        sched.recv(from_grp[0], len(from_grp) * gsz * m, tagoff=2 + r,
                   dst=("si", 0, len(from_grp) * gsz * m))
        sched.send(to_grp[0], gsz * len(to_grp) * m, tagoff=2 + r,
                   src=("so", 0, gsz * len(to_grp) * m))
        # unpack: sender member k2 (rank i) -> local member q
        sched.round()
        for k2, i in enumerate(from_grp):
            for q in range(gsz):
                sched.copy(m, src=("si", (k2 * gsz + q) * m, m),
                           dst=("scatter", q * full + i * m, m))

    # -- phase 3: scatter each member's assembled result ------------------
    sched.round()
    for q in range(1, gsz):
        sched.send(members[q], full, tagoff=1,
                   src=("scatter", q * full, full))
    sched.copy(full, src=("scatter", 0, full), dst=("recv", 0, full))
    return sched


def compiled_hier_ialltoall(size: int, rank: int, m: int, groups: Groups):
    """Cached compiled plan for :func:`build_hier_ialltoall`."""
    return SCHEDULE_CACHE.get(
        ("alltoall", "hier", size, rank, m, 0, groups),
        lambda: build_hier_ialltoall(size, rank, m, groups),
    )
