"""High-level collective entry points (persistent-style helpers).

These wrap the schedule builders into one-call APIs for rank programs:

* ``start_*`` — build + post a non-blocking collective, returning the
  :class:`~repro.nbc.request.NBCRequest` to progress/wait on;
* the module-level generators (``alltoall``, ``bcast``, ...) — blocking
  convenience wrappers (``yield from nbc.alltoall(ctx, ...)``), used for
  the paper's blocking-MPI baselines.

Payload mode: pass ``sendbuf`` / ``recvbuf`` numpy arrays to move real
data; omit them for size-only performance runs.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..sim.mpi import MPIContext, SimComm
from ..sim.process import Wait
from .hier import (
    Groups,
    compiled_hier_ialltoall,
    compiled_hier_ibcast,
    groups_for_comm,
    hier_alltoall_scratch_bytes,
)
from .ialltoall import alltoall_scratch_bytes, compiled_ialltoall
from .iallgather import compiled_iallgather
from .iallgatherv import compiled_iallgatherv
from .iallreduce import compiled_iallreduce
from .ibcast import BINOMIAL, compiled_ibcast
from .ireduce import compiled_ireduce
from .ireduce_scatter import compiled_ireduce_scatter
from .request import NBCRequest, make_buffers
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = [
    "start_ialltoall",
    "start_ibcast",
    "start_iallgather",
    "start_iallgatherv",
    "start_iallreduce",
    "start_ireduce",
    "start_ireduce_scatter",
    "start_ibarrier",
    "alltoall",
    "bcast",
    "allgather",
    "reduce",
    "barrier",
]


def _local_rank(ctx: MPIContext, comm: Optional[SimComm]) -> tuple[SimComm, int]:
    comm = comm or ctx.comm_world
    return comm, comm.local_rank(ctx.rank)


def _groups(ctx: MPIContext, comm: SimComm,
            groups: Optional[Groups]) -> Groups:
    return groups if groups is not None else groups_for_comm(comm, ctx.topology)


def start_ialltoall(
    ctx: MPIContext,
    m: int,
    algorithm: str = "linear",
    comm: Optional[SimComm] = None,
    sendbuf: Optional[np.ndarray] = None,
    recvbuf: Optional[np.ndarray] = None,
    groups: Optional[Groups] = None,
) -> NBCRequest:
    """Post a non-blocking all-to-all of ``m`` bytes per process pair.

    ``algorithm="hier"`` routes through per-node leaders; ``groups``
    overrides the topology-derived node partition.
    """
    comm, rank = _local_rank(ctx, comm)
    if algorithm == "hier":
        g = _groups(ctx, comm, groups)
        sched = compiled_hier_ialltoall(comm.size, rank, m, g)
        scratch = hier_alltoall_scratch_bytes(comm.size, rank, m, g)
    else:
        sched = compiled_ialltoall(comm.size, rank, m, algorithm)
        scratch = alltoall_scratch_bytes(comm.size, m, algorithm)
    buffers = None
    if sendbuf is not None or recvbuf is not None:
        buffers = make_buffers(send=sendbuf, recv=recvbuf)
        for name, nbytes in scratch.items():
            buffers[name] = np.empty(nbytes, dtype=np.uint8)
    return NBCRequest(sched, comm, rank, buffers).start(ctx)


def start_ibcast(
    ctx: MPIContext,
    nbytes: int,
    root: int = 0,
    fanout=BINOMIAL,
    segsize: int = 128 * 1024,
    comm: Optional[SimComm] = None,
    buf: Optional[np.ndarray] = None,
    groups: Optional[Groups] = None,
) -> NBCRequest:
    """Post a non-blocking broadcast of ``nbytes`` from ``root``.

    ``fanout="hier"`` selects the two-level leader tree; ``groups``
    overrides the topology-derived node partition.
    """
    comm, rank = _local_rank(ctx, comm)
    if fanout == "hier":
        g = _groups(ctx, comm, groups)
        sched = compiled_hier_ibcast(comm.size, rank, root, nbytes, segsize, g)
    else:
        sched = compiled_ibcast(comm.size, rank, root, nbytes, fanout, segsize)
    buffers = make_buffers(data=buf) if buf is not None else None
    return NBCRequest(sched, comm, rank, buffers).start(ctx)


def start_iallgather(
    ctx: MPIContext,
    m: int,
    algorithm: str = "ring",
    comm: Optional[SimComm] = None,
    sendbuf: Optional[np.ndarray] = None,
    recvbuf: Optional[np.ndarray] = None,
) -> NBCRequest:
    """Post a non-blocking all-gather of ``m`` bytes per rank."""
    comm, rank = _local_rank(ctx, comm)
    sched = compiled_iallgather(comm.size, rank, m, algorithm)
    buffers = None
    if sendbuf is not None or recvbuf is not None:
        buffers = make_buffers(send=sendbuf, recv=recvbuf)
    return NBCRequest(sched, comm, rank, buffers).start(ctx)


def start_ireduce(
    ctx: MPIContext,
    nbytes: int,
    root: int = 0,
    algorithm: str = "binomial",
    comm: Optional[SimComm] = None,
    buf: Optional[np.ndarray] = None,
    dtype: str = "float64",
    op: str = "sum",
    segsize: int = 0,
) -> NBCRequest:
    """Post a non-blocking reduction of ``nbytes`` to ``root``."""
    comm, rank = _local_rank(ctx, comm)
    sched = compiled_ireduce(comm.size, rank, root, nbytes, algorithm,
                             dtype=dtype, op=op, segsize=segsize)
    buffers = None
    if buf is not None:
        buffers = make_buffers(data=buf)
        buffers["acc"] = np.empty(nbytes, dtype=np.uint8)
        buffers["in"] = np.empty(nbytes, dtype=np.uint8)
    return NBCRequest(sched, comm, rank, buffers).start(ctx)


def start_iallgatherv(
    ctx: MPIContext,
    counts,
    algorithm: str = "linear",
    comm: Optional[SimComm] = None,
    sendbuf: Optional[np.ndarray] = None,
    recvbuf: Optional[np.ndarray] = None,
    groups: Optional[Groups] = None,
) -> NBCRequest:
    """Post a non-blocking all-gather-v; rank *i* contributes ``counts[i]``."""
    comm, rank = _local_rank(ctx, comm)
    g = _groups(ctx, comm, groups) if algorithm == "hier" else ()
    sched = compiled_iallgatherv(comm.size, rank, tuple(counts), algorithm, g)
    buffers = None
    if sendbuf is not None or recvbuf is not None:
        buffers = make_buffers(send=sendbuf, recv=recvbuf)
    return NBCRequest(sched, comm, rank, buffers).start(ctx)


def start_ireduce_scatter(
    ctx: MPIContext,
    m: int,
    algorithm: str = "pairwise",
    comm: Optional[SimComm] = None,
    sendbuf: Optional[np.ndarray] = None,
    recvbuf: Optional[np.ndarray] = None,
    dtype: str = "float64",
    op: str = "sum",
) -> NBCRequest:
    """Post a non-blocking equal-block reduce-scatter.

    ``sendbuf`` holds the rank's ``P*m``-byte contribution; the fully
    reduced ``m``-byte block lands in ``recvbuf``.
    """
    comm, rank = _local_rank(ctx, comm)
    sched = compiled_ireduce_scatter(comm.size, rank, m, algorithm,
                                     dtype=dtype, op=op)
    buffers = None
    if sendbuf is not None or recvbuf is not None:
        buffers = make_buffers(data=sendbuf, recv=recvbuf)
        buffers["acc"] = np.empty(comm.size * m, dtype=np.uint8)
        buffers["in"] = np.empty(comm.size * m, dtype=np.uint8)
    return NBCRequest(sched, comm, rank, buffers).start(ctx)


def start_iallreduce(
    ctx: MPIContext,
    nbytes: int,
    algorithm: str = "reduce_bcast",
    comm: Optional[SimComm] = None,
    buf: Optional[np.ndarray] = None,
    dtype: str = "float64",
    op: str = "sum",
    groups: Optional[Groups] = None,
) -> NBCRequest:
    """Post a non-blocking all-reduce over ``buf`` (in place)."""
    comm, rank = _local_rank(ctx, comm)
    g = _groups(ctx, comm, groups) if algorithm == "hier" else ()
    sched = compiled_iallreduce(comm.size, rank, nbytes, algorithm,
                                dtype=dtype, op=op, groups=g)
    buffers = None
    if buf is not None:
        buffers = make_buffers(data=buf)
        buffers["acc"] = np.empty(nbytes, dtype=np.uint8)
        buffers["in"] = np.empty(nbytes, dtype=np.uint8)
    return NBCRequest(sched, comm, rank, buffers).start(ctx)


def _barrier_schedule(size: int, rank: int) -> Schedule:
    """Dissemination barrier: ceil(log2 P) zero-byte exchange rounds."""
    sched = Schedule(name="ibarrier[dissemination]")
    nrounds = math.ceil(math.log2(size)) if size > 1 else 0
    for k in range(nrounds):
        d = 1 << k
        sched.round()
        sched.recv((rank - d) % size, 0, tagoff=k)
        sched.send((rank + d) % size, 0, tagoff=k)
    return sched


def start_ibarrier(ctx: MPIContext, comm: Optional[SimComm] = None) -> NBCRequest:
    """Post a non-blocking dissemination barrier."""
    comm, rank = _local_rank(ctx, comm)
    sched = SCHEDULE_CACHE.get(
        ("barrier", "dissemination", comm.size, rank, 0, 0, 0),
        lambda: _barrier_schedule(comm.size, rank),
    )
    return NBCRequest(sched, comm, rank).start(ctx)


# ---------------------------------------------------------------------------
# blocking wrappers (generators: use as ``yield from nbc.alltoall(ctx, ...)``)
# ---------------------------------------------------------------------------


def alltoall(ctx: MPIContext, m: int, algorithm: str = "pairwise", **kw):
    """Blocking all-to-all: the MPI_Alltoall baseline of §IV-B."""
    req = start_ialltoall(ctx, m, algorithm=algorithm, **kw)
    yield Wait(req)
    return req


def bcast(ctx: MPIContext, nbytes: int, **kw):
    """Blocking broadcast."""
    req = start_ibcast(ctx, nbytes, **kw)
    yield Wait(req)
    return req


def allgather(ctx: MPIContext, m: int, algorithm: str = "ring", **kw):
    """Blocking all-gather."""
    req = start_iallgather(ctx, m, algorithm=algorithm, **kw)
    yield Wait(req)
    return req


def reduce(ctx: MPIContext, nbytes: int, **kw):
    """Blocking reduction."""
    req = start_ireduce(ctx, nbytes, **kw)
    yield Wait(req)
    return req


def barrier(ctx: MPIContext, comm: Optional[SimComm] = None):
    """Blocking barrier."""
    req = start_ibarrier(ctx, comm)
    yield Wait(req)
    return req
