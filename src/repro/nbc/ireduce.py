"""Non-blocking reduce schedules.

The paper converted Open MPI's ``MPI_Reduce`` implementations to LibNBC
schedules alongside Bcast/Allgather/Alltoall (§III-C); we provide the
two classic shapes:

* **binomial** — log2(P) combining tree rooted at ``root``;
* **chain** — a pipeline along the rank line, segmented like the
  broadcast (good for very large payloads).

Buffers: ``"data"`` is this rank's contribution (also the result buffer
on the root), ``"acc"`` the local accumulator, and ``"in"`` the staging
area for incoming contributions.  All three are ``nbytes`` long.
"""

from __future__ import annotations

import math

from ..errors import ScheduleError
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = ["REDUCE_ALGORITHMS", "build_ireduce", "compiled_ireduce"]

REDUCE_ALGORITHMS = ("binomial", "chain")


def build_ireduce(
    size: int,
    rank: int,
    root: int,
    nbytes: int,
    algorithm: str,
    dtype: str = "float64",
    op: str = "sum",
    segsize: int = 0,
) -> Schedule:
    """Build this rank's schedule for a reduction to ``root``.

    ``segsize`` only affects the chain algorithm (0 = no segmentation).
    """
    if size <= 0 or not 0 <= rank < size or not 0 <= root < size:
        raise ScheduleError(f"bad reduce geometry size={size} rank={rank} root={root}")
    if algorithm == "binomial":
        return _binomial(size, rank, root, nbytes, dtype, op)
    if algorithm == "chain":
        return _chain(size, rank, root, nbytes, dtype, op, segsize)
    raise ScheduleError(
        f"unknown reduce algorithm {algorithm!r}; expected one of {REDUCE_ALGORITHMS}"
    )


def _binomial(size: int, rank: int, root: int, nbytes: int,
              dtype: str, op: str) -> Schedule:
    sched = Schedule(name="ireduce[binomial]")
    # tag offsets are per combining step; leaves use fewer than interior
    # nodes, so pin the reservation to the rank-independent maximum
    sched.uniform_tag_span = max(1, math.ceil(math.log2(size))) if size > 1 else 1
    if size == 1:
        return sched
    vrank = (rank - root) % size
    to_real = lambda v: (v + root) % size  # noqa: E731

    # local accumulator starts as own contribution
    sched.round()
    sched.copy(nbytes, src=("data", 0, nbytes), dst=("acc", 0, nbytes))

    # combine children bottom-up: at step k the partner differs in bit k
    mask = 1
    step = 0
    while mask < size:
        if vrank & mask:
            # send accumulated value to parent, then done
            sched.round()
            sched.send(to_real(vrank - mask), nbytes, tagoff=step,
                       src=("acc", 0, nbytes))
            break
        child = vrank + mask
        if child < size:
            sched.round()
            sched.recv(to_real(child), nbytes, tagoff=step, dst=("in", 0, nbytes))
            sched.round()
            sched.combine(nbytes, src=("in", 0, nbytes), dst=("acc", 0, nbytes),
                          dtype=dtype, op=op)
        mask <<= 1
        step += 1
    if vrank == 0:
        sched.round()
        sched.copy(nbytes, src=("acc", 0, nbytes), dst=("data", 0, nbytes))
    return sched


def _chain(size: int, rank: int, root: int, nbytes: int,
           dtype: str, op: str, segsize: int) -> Schedule:
    sched = Schedule(name="ireduce[chain]")
    if size == 1:
        return sched
    if segsize <= 0:
        segsize = nbytes
    # every rank reserves one tag per segment regardless of its position
    sched.uniform_tag_span = max(1, math.ceil(nbytes / segsize))
    vrank = (rank - root) % size
    to_real = lambda v: (v + root) % size  # noqa: E731
    # the chain runs from the highest virtual rank down to the root:
    # each process receives the partial result from vrank+1, combines
    # its own data, and forwards to vrank-1
    prev_v = vrank + 1  # upstream neighbour (contributes to us)
    next_v = vrank - 1  # downstream neighbour (we contribute to them)
    nseg = max(1, math.ceil(nbytes / segsize))
    seg_bounds = [
        (s * segsize, min(segsize, nbytes - s * segsize)) for s in range(nseg)
    ]

    sched.round()
    sched.copy(nbytes, src=("data", 0, nbytes), dst=("acc", 0, nbytes))
    for s, (off, length) in enumerate(seg_bounds):
        if prev_v < size:
            sched.round()
            sched.recv(to_real(prev_v), length, tagoff=s, dst=("in", off, length))
            sched.round()
            sched.combine(length, src=("in", off, length), dst=("acc", off, length),
                          dtype=dtype, op=op)
        if next_v >= 0:
            sched.round()
            sched.send(to_real(next_v), length, tagoff=s, src=("acc", off, length))
    if vrank == 0:
        sched.round()
        sched.copy(nbytes, src=("acc", 0, nbytes), dst=("data", 0, nbytes))
    return sched


def compiled_ireduce(
    size: int,
    rank: int,
    root: int,
    nbytes: int,
    algorithm: str,
    dtype: str = "float64",
    op: str = "sum",
    segsize: int = 0,
):
    """Cached compiled plan for :func:`build_ireduce` (same arguments)."""
    return SCHEDULE_CACHE.get(
        ("reduce", algorithm, size, rank, nbytes, segsize, 0, root, dtype, op),
        lambda: build_ireduce(size, rank, root, nbytes, algorithm,
                              dtype=dtype, op=op, segsize=segsize),
    )
