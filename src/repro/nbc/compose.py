"""Composed collective schedules (guideline mock-up candidates).

Performance-guideline verification (Hunold's PGMPITuneLib approach,
see ``repro.guidelines``) compares a tuned collective against a
*mock-up* implementation built from other collectives that subsume it —
the classic example being

    Bcast(n)  ≼  Scatter(n) + Allgather(n)

(van de Geijn's large-message broadcast).  If the composition beats the
tuned decision, the tuner's selection for that scenario violates the
guideline and a defect report is due.

:func:`build_scatter_allgather` emits the composed schedule as one
ordinary :class:`~repro.nbc.schedule.Schedule` over the broadcast
buffer ``"data"``: a linear scatter of ``ceil(n/P)``-byte blocks from
the root followed by a ring all-gather of those blocks, all within the
LibNBC round semantics — so the mock-up runs on the exact same progress
engine, timer and network model as every real candidate, which is what
makes the comparison fair.
"""

from __future__ import annotations

from ..errors import ScheduleError
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = ["build_scatter_allgather", "compiled_scatter_allgather"]


def _block_bounds(size: int, nbytes: int) -> list[tuple[int, int]]:
    """``(offset, length)`` of each rank's scatter block of ``nbytes``."""
    m = -(-nbytes // size)  # ceil division
    return [(i * m, min(m, nbytes - i * m)) for i in range(size)]


def build_scatter_allgather(size: int, rank: int, root: int,
                            nbytes: int) -> Schedule:
    """This rank's schedule for the Bcast ≼ Scatter+Allgather mock-up.

    Phase 1 (one round): the root sends block ``i`` of ``"data"`` to
    rank ``i``; phase 2 (``P-1`` rounds): a ring all-gather circulates
    the blocks until every rank holds the full payload.  Requires
    ``nbytes >= size`` so every block is non-empty (a zero-byte block
    would leave some rank without a message to forward).
    """
    if size <= 0 or not 0 <= rank < size or not 0 <= root < size:
        raise ScheduleError(
            f"bad geometry size={size} rank={rank} root={root}")
    if 1 < size > nbytes:
        raise ScheduleError(
            f"scatter+allgather mock-up needs nbytes >= nranks "
            f"(every block non-empty), got {nbytes} < {size}")
    sched = Schedule(name="ibcast[scatter+allgather]")
    if size == 1:
        return sched
    bounds = _block_bounds(size, nbytes)

    # phase 1: linear scatter from the root (virtual block i -> rank i;
    # the root keeps its own block, which is already in place)
    sched.round()
    if rank == root:
        for peer in range(size):
            if peer == root:
                continue
            off, length = bounds[peer]
            sched.send(peer, length, tagoff=0, src=("data", off, length))
    else:
        off, length = bounds[rank]
        sched.recv(root, length, tagoff=0, dst=("data", off, length))

    # phase 2: ring all-gather of the scattered blocks.  Round r
    # forwards the block received r rounds ago to the right neighbour.
    right = (rank + 1) % size
    left = (rank - 1) % size
    for r in range(size - 1):
        outgoing = (rank - r) % size
        incoming = (rank - r - 1) % size
        sched.round()
        off, length = bounds[incoming]
        sched.recv(left, length, tagoff=r + 1, dst=("data", off, length))
        off, length = bounds[outgoing]
        sched.send(right, length, tagoff=r + 1, src=("data", off, length))
    sched.uniform_tag_span = size
    return sched


def compiled_scatter_allgather(size: int, rank: int, root: int, nbytes: int):
    """Cached compiled plan for :func:`build_scatter_allgather`."""
    return SCHEDULE_CACHE.get(
        ("bcast", "scatter+allgather", size, rank, nbytes, 0, 0, root),
        lambda: build_scatter_allgather(size, rank, root, nbytes),
    )
