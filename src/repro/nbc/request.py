"""Execution of collective schedules: the NBC request & progress engine.

An :class:`NBCRequest` executes a :class:`~repro.nbc.schedule.Schedule`
incrementally, exactly like a LibNBC handle:

* :meth:`NBCRequest.start` posts round 0,
* each call to :meth:`NBCRequest.progress` (from an explicit progress
  syscall, or continuously while the rank blocks in ``Wait``) checks
  whether the current round finished locally and, if so, posts the next
  round,
* the request is :attr:`~repro.sim.process.Waitable.done` once the last
  round completed.

Because round advancement needs the owning rank's CPU, a rank that
computes without progressing leaves its schedule stalled after the first
round — the paper's central observation about non-blocking collectives
in single-threaded MPI libraries.
"""

from __future__ import annotations

from typing import Union, Optional

import numpy as np

from ..errors import ScheduleError
from ..sim.mpi import MPIContext, SimComm
from ..sim.process import RecvRequest, Waitable
from .schedule import CompiledSchedule, Schedule, resolve

__all__ = ["NBCRequest", "make_buffers"]


def make_buffers(**arrays) -> dict[str, Optional[np.ndarray]]:
    """Build a schedule buffer dict from named arrays.

    Arrays of any dtype are accepted and stored as flat ``uint8`` views
    (so schedule byte-range specs apply uniformly); ``None`` values are
    kept as placeholders.

    >>> bufs = make_buffers(send=np.zeros(4), recv=np.zeros(4))
    >>> bufs["send"].dtype
    dtype('uint8')
    """
    out: dict[str, Optional[np.ndarray]] = {}
    for name, arr in arrays.items():
        if arr is None:
            out[name] = None
        else:
            if not isinstance(arr, np.ndarray):
                arr = np.asarray(arr)
            if not arr.flags["C_CONTIGUOUS"]:
                raise ScheduleError(f"buffer {name!r} must be C-contiguous")
            out[name] = arr.reshape(-1).view(np.uint8)
    return out


class NBCRequest(Waitable):
    """A non-blocking collective in flight.

    Parameters
    ----------
    schedule:
        The per-rank schedule to execute — a mutable
        :class:`~repro.nbc.schedule.Schedule` or a cached
        :class:`~repro.nbc.schedule.CompiledSchedule` plan (all per-run
        state lives in this request, so compiled plans are freely shared
        across requests, ranks and iterations).
    comm:
        Communicator the collective runs on.
    local_rank:
        This process's rank within ``comm``.
    buffers:
        Optional buffer dict (see :func:`make_buffers`); ``None`` runs
        the schedule size-only.
    """

    __slots__ = (
        "schedule",
        "comm",
        "local_rank",
        "buffers",
        "tag_base",
        "start_time",
        "complete_time",
        "_round",
        "_pending",
        "_started",
        "_nrounds",
    )

    def __init__(
        self,
        schedule: Union[Schedule, CompiledSchedule],
        comm: SimComm,
        local_rank: int,
        buffers: Optional[dict] = None,
    ):
        super().__init__()
        self.schedule = schedule
        self.comm = comm
        self.local_rank = local_rank
        self.buffers = buffers
        self.tag_base = -1
        self.start_time: Optional[float] = None
        self.complete_time: Optional[float] = None
        self._round = 0
        self._pending = 0
        self._started = False
        self._nrounds = 0

    # ------------------------------------------------------------------

    def start(self, ctx: MPIContext) -> "NBCRequest":
        """Post the first round (the `*_init` of a persistent operation)."""
        if self._started:
            raise ScheduleError("NBCRequest.start() called twice")
        self._started = True
        self.start_time = ctx.now
        self.tag_base = self.comm.next_coll_tag(
            self.local_rank, self.schedule.tag_span
        )
        # rounds are frozen once started; cache the count for _advance,
        # which runs on every progress/wait poll
        self._nrounds = len(self.schedule.rounds)
        if not self.schedule.rounds:
            self.done = True
            self.complete_time = ctx.now
            return self
        self._post_round(ctx)
        self._advance(ctx)
        return self

    def progress(self, ctx: MPIContext) -> bool:
        """Advance the schedule as far as local completions allow.

        Returns True when the request is complete.
        """
        # fast exits for the two common poll outcomes: already complete,
        # or blocked on in-flight ops (nothing to advance either way)
        if self.done:
            return True
        if self._pending:
            return False
        if not self._started:
            raise ScheduleError("progress() before start()")
        self._advance(ctx)
        return self.done

    # ------------------------------------------------------------------

    def _advance(self, ctx: MPIContext) -> None:
        nrounds = self._nrounds
        while not self.done and self._pending == 0:
            self._round += 1
            if self._round >= nrounds:
                self.done = True
                self.complete_time = ctx.now
                obs = ctx.world._obs
                if obs is not None:
                    obs.instant("communication", "nbc.done", ctx.rank,
                                ctx.now, {"sched": self.schedule.name,
                                          "rounds": nrounds})
                notify = self._notify
                if notify is not None:
                    notify(self, ctx.now)
                return
            self._post_round(ctx)

    def _post_round(self, ctx: MPIContext) -> None:
        ops = self.schedule.rounds[self._round]
        obs = ctx.world._obs
        if obs is not None:
            obs.instant("communication", "nbc.round", ctx.rank, ctx.now,
                        {"sched": self.schedule.name, "round": self._round,
                         "ops": len(ops)})
            # hierarchical schedules (PR-8) get an explicit phase marker
            # so the intra/inter/broadcast structure is visible in traces
            if "[hier" in self.schedule.name:
                obs.instant("communication", "nbc.hier.phase", ctx.rank,
                            ctx.now, {"sched": self.schedule.name,
                                      "phase": self._round,
                                      "ops": len(ops)})
        buffers = self.buffers
        comm = self.comm
        tag_base = self.tag_base
        child_done = self._child_done
        # guard: eager sends / instantly-matched recvs fire their notify
        # synchronously inside the post call; the sentinel keeps _pending
        # positive until every op of the round has been posted
        self._pending += 1
        if buffers is None:
            # size-only fast path: no buffer resolution, no data movement
            # (performance sweeps post thousands of these rounds)
            for op in ops:
                kind = op.kind
                if kind == "send":
                    self._pending += 1
                    # positional args: this is the sweep hot loop
                    ctx.isend(op.peer, op.nbytes, tag_base + op.tagoff,
                              comm, None, child_done)
                elif kind == "recv":
                    self._pending += 1
                    ctx.irecv(op.peer, op.nbytes, tag_base + op.tagoff,
                              comm, child_done)
                elif kind == "copy":
                    ctx.charge_copy(op.nbytes)
                elif kind == "combine":
                    ctx.charge_copy(2 * op.nbytes)
                else:  # pragma: no cover - schedule.validate() prevents this
                    raise ScheduleError(f"unknown op kind {kind!r}")
            self._pending -= 1
            return
        for op in ops:
            kind = op.kind
            if kind == "send":
                self._pending += 1
                data = resolve(buffers, op.src)
                ctx.isend(
                    op.peer,
                    nbytes=op.nbytes,
                    tag=tag_base + op.tagoff,
                    comm=comm,
                    data=data,
                    notify=child_done,
                )
            elif kind == "recv":
                self._pending += 1
                dst = resolve(buffers, op.dst)
                if dst is None:
                    notify = child_done
                else:
                    notify = self._make_recv_notify(dst)
                ctx.irecv(
                    op.peer,
                    nbytes=op.nbytes,
                    tag=tag_base + op.tagoff,
                    comm=comm,
                    notify=notify,
                )
            elif kind == "copy":
                ctx.charge_copy(op.nbytes)
                src = resolve(buffers, op.src)
                dst = resolve(buffers, op.dst)
                if src is not None and dst is not None:
                    dst[:] = src
            elif kind == "combine":
                # a combine reads + writes the destination: ~2 copies of CPU
                ctx.charge_copy(2 * op.nbytes)
                src = resolve(buffers, op.src)
                dst = resolve(buffers, op.dst)
                if src is not None and dst is not None:
                    op.apply(src, dst)
            else:  # pragma: no cover - schedule.validate() prevents this
                raise ScheduleError(f"unknown op kind {kind!r}")
        self._pending -= 1

    def _make_recv_notify(self, dst_view: np.ndarray):
        def notify(req: RecvRequest, t: float) -> None:
            if req.data is not None:
                dst_view[:] = req.data
            self._pending -= 1

        return notify

    def _child_done(self, req: Waitable, t: float) -> None:
        self._pending -= 1

    # ------------------------------------------------------------------

    @property
    def current_round(self) -> int:
        """Index of the round currently in flight (for tests/tracing)."""
        return self._round

    def __repr__(self) -> str:  # pragma: no cover
        state = "done" if self.done else f"round {self._round}"
        return f"<NBCRequest {self.schedule.name!r} {state}>"
