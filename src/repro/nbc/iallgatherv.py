"""Non-blocking all-gather-v schedules (variable per-rank block sizes).

``Allgatherv`` generalizes the all-gather: rank *i* contributes
``counts[i]`` bytes, and every rank ends up with the concatenation of
all contributions in rank order.  Three candidates:

* **linear** — everybody sends its block to everybody in one round;
* **ring** — ``P-1`` rounds forwarding one (variable-size) block to the
  right neighbour; bandwidth-optimal;
* **hier** — leader-based two-level (see :mod:`repro.nbc.hier`):
  members hand their block to the node leader, leaders run the ring over
  nodes forwarding one node's blocks per round, then each leader
  replicates the assembled result to its members.

Buffers: ``"send"`` is this rank's contribution (``counts[rank]``
bytes), ``"recv"`` the concatenated result (``sum(counts)`` bytes).
Zero-length contributions are legal; both sides of a transfer skip the
message consistently because ``counts`` is global knowledge.
"""

from __future__ import annotations

from ..errors import ScheduleError
from .hier import Groups, _group_index, validate_groups
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = [
    "ALLGATHERV_ALGORITHMS",
    "balanced_counts",
    "build_iallgatherv",
    "compiled_iallgatherv",
]

ALLGATHERV_ALGORITHMS = ("linear", "ring", "hier")


def balanced_counts(total: int, size: int) -> tuple[int, ...]:
    """Split ``total`` bytes over ``size`` ranks as evenly as possible.

    The first ``total % size`` ranks get one extra byte — the canonical
    vector the ADCL function-set uses when only a total payload is
    specified (genuinely uneven whenever ``size`` does not divide
    ``total``, which keeps the v-paths exercised).
    """
    base, extra = divmod(total, size)
    return tuple(base + (1 if i < extra else 0) for i in range(size))


def _offsets(counts) -> list[int]:
    offs = [0]
    for c in counts:
        offs.append(offs[-1] + c)
    return offs


def build_iallgatherv(
    size: int,
    rank: int,
    counts,
    algorithm: str,
    groups: Groups = (),
) -> Schedule:
    """Build this rank's schedule for an all-gather-v of ``counts`` bytes."""
    if size <= 0 or not 0 <= rank < size:
        raise ScheduleError(f"bad allgatherv geometry size={size} rank={rank}")
    counts = tuple(counts)
    if len(counts) != size:
        raise ScheduleError(
            f"need one count per rank: {len(counts)} counts for {size} ranks")
    if any(c < 0 for c in counts):
        raise ScheduleError(f"negative count in {counts!r}")
    if algorithm == "linear":
        return _linear(size, rank, counts)
    if algorithm == "ring":
        return _ring(size, rank, counts)
    if algorithm == "hier":
        validate_groups(size, groups)
        return _hier(size, rank, counts, groups)
    raise ScheduleError(
        f"unknown allgatherv algorithm {algorithm!r}; "
        f"expected one of {ALLGATHERV_ALGORITHMS}")


def _linear(size: int, rank: int, counts) -> Schedule:
    offs = _offsets(counts)
    sched = Schedule(name="iallgatherv[linear]")
    sched.uniform_tag_span = 1
    sched.round()
    sched.copy(counts[rank], src=("send", 0, counts[rank]),
               dst=("recv", offs[rank], counts[rank]))
    for i in range(1, size):
        peer = (rank + i) % size
        if counts[peer]:
            sched.recv(peer, counts[peer], tagoff=0,
                       dst=("recv", offs[peer], counts[peer]))
    for i in range(1, size):
        peer = (rank + i) % size
        if counts[rank]:
            sched.send(peer, counts[rank], tagoff=0,
                       src=("send", 0, counts[rank]))
    return sched


def _ring(size: int, rank: int, counts) -> Schedule:
    offs = _offsets(counts)
    sched = Schedule(name="iallgatherv[ring]")
    sched.uniform_tag_span = max(1, size - 1)
    sched.round()
    sched.copy(counts[rank], src=("send", 0, counts[rank]),
               dst=("recv", offs[rank], counts[rank]))
    right = (rank + 1) % size
    left = (rank - 1) % size
    for r in range(size - 1):
        outgoing = (rank - r) % size
        incoming = (rank - r - 1) % size
        sched.round()
        if counts[incoming]:
            sched.recv(left, counts[incoming], tagoff=r,
                       dst=("recv", offs[incoming], counts[incoming]))
        if counts[outgoing]:
            sched.send(right, counts[outgoing], tagoff=r,
                       src=("recv", offs[outgoing], counts[outgoing]))
        if not counts[incoming] and not counts[outgoing]:
            # rounds may not be empty; keep the local barrier structure
            sched.copy(0)
    return sched


def _hier(size: int, rank: int, counts, groups: Groups) -> Schedule:
    offs = _offsets(counts)
    total = offs[-1]
    ngroups = len(groups)
    maxg = max(len(g) for g in groups)
    sched = Schedule(name="iallgatherv[hier]")
    # tagoffs: 0 = intra gather, 1 + r*maxg + k = ring round r block k,
    # last = intra replication of the assembled result
    span = 1 + max(0, ngroups - 1) * maxg + 1
    sched.uniform_tag_span = span
    gidx = _group_index(groups, rank)
    members = groups[gidx]
    leader = members[0]

    if rank != leader:
        if counts[rank]:
            sched.round()
            sched.send(leader, counts[rank], tagoff=0,
                       src=("send", 0, counts[rank]))
        sched.round()
        sched.recv(leader, total, tagoff=span - 1, dst=("recv", 0, total))
        return sched

    # leader: collect the node's blocks straight into place
    sched.round()
    sched.copy(counts[rank], src=("send", 0, counts[rank]),
               dst=("recv", offs[rank], counts[rank]))
    for member in members[1:]:
        if counts[member]:
            sched.recv(member, counts[member], tagoff=0,
                       dst=("recv", offs[member], counts[member]))

    # ring over node leaders: round r forwards the blocks of node
    # (gidx - r) to the right while receiving node (gidx - r - 1)'s
    right = groups[(gidx + 1) % ngroups][0]
    left = groups[(gidx - 1) % ngroups][0]
    for r in range(ngroups - 1):
        out_grp = groups[(gidx - r) % ngroups]
        in_grp = groups[(gidx - r - 1) % ngroups]
        sched.round()
        emitted = False
        for k, member in enumerate(in_grp):
            if counts[member]:
                emitted = True
                sched.recv(left, counts[member], tagoff=1 + r * maxg + k,
                           dst=("recv", offs[member], counts[member]))
        for k, member in enumerate(out_grp):
            if counts[member]:
                emitted = True
                sched.send(right, counts[member], tagoff=1 + r * maxg + k,
                           src=("recv", offs[member], counts[member]))
        if not emitted:
            sched.copy(0)

    # replicate the assembled result to the node members
    sched.round()
    for member in members[1:]:
        sched.send(member, total, tagoff=span - 1, src=("recv", 0, total))
    sched.copy(0)  # keep the round non-empty for single-member groups
    return sched


def compiled_iallgatherv(size: int, rank: int, counts, algorithm: str,
                         groups: Groups = ()):
    """Cached compiled plan for :func:`build_iallgatherv`."""
    counts = tuple(counts)
    return SCHEDULE_CACHE.get(
        ("allgatherv", algorithm, size, rank, counts, 0, groups),
        lambda: build_iallgatherv(size, rank, counts, algorithm, groups),
    )
