"""Non-blocking broadcast schedules.

The paper's ``Ibcast`` function-set is parameterized by two attributes
(§III-E):

* **fan-out** of the broadcast tree —

  - ``0``  : linear (the root sends directly to everyone; an "infinite"
    number of children),
  - ``1``  : chain (each process forwards to the next),
  - ``2``–``5`` : k-ary tree with k children per parent,
  - ``BINOMIAL`` : binomial tree,

* **segment size** — the message is split into pipeline segments of
  32 KB / 64 KB / 128 KB; segment *s* travels down the tree one round
  behind segment *s−1*.

``7 fan-out values x 3 segment sizes = 21`` implementations, matching
the paper.
"""

from __future__ import annotations

import math

from ..errors import ScheduleError
from .schedule import SCHEDULE_CACHE, Schedule

__all__ = ["BINOMIAL", "build_ibcast", "compiled_ibcast", "bcast_tree",
           "emit_pipelined_bcast", "segment_bounds", "IBCAST_FANOUTS"]

#: sentinel fan-out value selecting the binomial tree (the paper's "N")
BINOMIAL = -1

#: all fan-out values of the paper's function-set
IBCAST_FANOUTS = (0, 1, 2, 3, 4, 5, BINOMIAL)


def bcast_tree(size: int, vrank: int, fanout: int) -> tuple[int, list[int]]:
    """Parent and children of ``vrank`` in a broadcast tree of ``size``.

    Operates on *virtual* ranks (root is virtual rank 0).  Returns
    ``(parent, children)`` with ``parent == -1`` for the root.
    """
    if not 0 <= vrank < size:
        raise ScheduleError(f"vrank {vrank} out of range for size {size}")
    if fanout == 0:  # linear: root parents everyone
        if vrank == 0:
            return -1, list(range(1, size))
        return 0, []
    if fanout == BINOMIAL:
        # children of v are v + 2^j for the zero bits above v's highest
        # set bit; standard binomial broadcast ordering
        if vrank == 0:
            parent = -1
            low = size  # loop below emits all powers of two < size
        else:
            low = vrank & (-vrank)  # lowest set bit
            parent = vrank - low
        children = []
        mask = 1
        while mask < (low if vrank else size):
            child = vrank + mask
            if child < size:
                children.append(child)
            mask <<= 1
        return parent, children
    if fanout == 1:  # chain
        parent = vrank - 1 if vrank > 0 else -1
        children = [vrank + 1] if vrank + 1 < size else []
        return parent, children
    if fanout < 0:
        raise ScheduleError(f"invalid fan-out {fanout}")
    parent = (vrank - 1) // fanout if vrank > 0 else -1
    children = [
        c for c in range(vrank * fanout + 1, vrank * fanout + fanout + 1)
        if c < size
    ]
    return parent, children


def segment_bounds(nbytes: int, segsize: int) -> list[tuple[int, int]]:
    """``(offset, length)`` of each pipeline segment of a payload."""
    if segsize <= 0:
        raise ScheduleError(f"segment size must be positive, got {segsize}")
    nseg = max(1, math.ceil(nbytes / segsize))
    return [
        (s * segsize, min(segsize, nbytes - s * segsize)) for s in range(nseg)
    ]


def emit_pipelined_bcast(
    sched: Schedule,
    parent: int,
    children: list[int],
    seg_bounds: list[tuple[int, int]],
    tag0: int = 0,
) -> Schedule:
    """Emit this rank's rounds of a segmented tree broadcast.

    ``parent``/``children`` are *real* communicator-local peers
    (``parent == -1`` on the root); the tree shape is entirely the
    caller's — flat k-ary/binomial trees (:func:`build_ibcast`) and the
    two-level hierarchical tree (:mod:`repro.nbc.hier`) share these
    exact rounds.  Segment *s* uses tag offset ``tag0 + s``; round *k*
    receives segment *k* from the parent while forwarding segment *k−1*
    to the children, so a depth-*d* tree with *S* segments completes in
    ``d + S - 1`` forwarding steps.
    """
    if parent == -1:
        # root: one round per segment, sending to all children
        for s, (off, length) in enumerate(seg_bounds):
            sched.round()
            for c in children:
                sched.send(c, length, tagoff=tag0 + s, src=("data", off, length))
    elif not children:
        # leaf: one receive per segment
        for s, (off, length) in enumerate(seg_bounds):
            sched.round()
            sched.recv(parent, length, tagoff=tag0 + s, dst=("data", off, length))
    else:
        # interior node: recv segment k while forwarding segment k-1
        nseg = len(seg_bounds)
        for k in range(nseg + 1):
            sched.round()
            if k < nseg:
                off, length = seg_bounds[k]
                sched.recv(parent, length, tagoff=tag0 + k,
                           dst=("data", off, length))
            if k > 0:
                off, length = seg_bounds[k - 1]
                for c in children:
                    sched.send(c, length, tagoff=tag0 + k - 1,
                               src=("data", off, length))
    return sched


def build_ibcast(
    size: int,
    rank: int,
    root: int,
    nbytes: int,
    fanout: int,
    segsize: int,
) -> Schedule:
    """Build this rank's schedule for a segmented tree broadcast.

    The broadcast buffer is the schedule buffer named ``"data"`` (on
    every rank; the root's content is distributed into everyone else's).

    The schedule pipelines segments: round *k* receives segment *k* from
    the parent and simultaneously forwards segment *k−1* to the
    children, so a depth-*d* tree with *S* segments completes in
    ``d + S - 1`` forwarding steps.
    """
    if size <= 0 or not 0 <= rank < size or not 0 <= root < size:
        raise ScheduleError(f"bad bcast geometry size={size} rank={rank} root={root}")
    seg_bounds = segment_bounds(nbytes, segsize)
    vrank = (rank - root) % size
    parent_v, children_v = bcast_tree(size, vrank, fanout)
    to_real = lambda v: (v + root) % size  # noqa: E731 - tiny translation

    fo_name = {0: "linear", 1: "chain", BINOMIAL: "binomial"}.get(fanout, f"{fanout}-ary")
    sched = Schedule(name=f"ibcast[{fo_name},seg={segsize}]")
    if size == 1:
        return sched
    parent = -1 if parent_v == -1 else to_real(parent_v)
    children = [to_real(c) for c in children_v]
    return emit_pipelined_bcast(sched, parent, children, seg_bounds)


def compiled_ibcast(
    size: int,
    rank: int,
    root: int,
    nbytes: int,
    fanout: int,
    segsize: int,
):
    """Cached compiled plan for :func:`build_ibcast` (same arguments)."""
    return SCHEDULE_CACHE.get(
        ("bcast", "tree", size, rank, nbytes, segsize, fanout, root),
        lambda: build_ibcast(size, rank, root, nbytes, fanout, segsize),
    )
