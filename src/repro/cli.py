"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``platforms``
    List the simulated machine presets.
``sweep``
    Run the overlap micro-benchmark for every implementation of an
    operation and print the Fig.-2-style bar chart.
``tune``
    Run ADCL on one scenario and print the learning trace + decision.
``fft``
    Run the 3-D FFT application kernel and compare methods.
``serve``
    Run the tuning knowledge daemon (crash-safe shared decision store;
    ``tune --serve`` / ``sweep --serve`` consult it).
``verify-guidelines``
    Verify tuned decisions against performance guidelines (exit 0
    compliant / 2 violations found / 1 harness error).
``report``
    Summarize/validate a recorded trace; ``--critical-path`` appends
    the blame attribution and dominant dependency chain.
``trace-merge``
    Stitch per-process traces (fabric workers, master, daemon) into
    one Perfetto document correlated by run id.
``top``
    Scrape ``--telemetry`` endpoints and render live queue depth,
    lease states, cache hit rates and breaker states.
``bench-report``
    Summarize the accumulated perf-harness run history with trend
    deltas.

Examples
--------
::

    python -m repro platforms
    python -m repro sweep --platform whale_tcp --nprocs 32 --nbytes 128KB
    python -m repro tune --selector heuristic --operation bcast
    python -m repro fft --platform crill --nprocs 48 --n 480
    python -m repro serve --socket /tmp/tuning.sock --data-dir /tmp/kb
    python -m repro tune --serve unix:/tmp/tuning.sock
    python -m repro verify-guidelines --platforms whale --fuzz 20 --seed 7
    python -m repro verify-guidelines --recheck tests/guidelines/scenarios
    python -m repro report trace.json --critical-path
    python -m repro trace-merge merged.json master=sweep.json w0=t0.json
    python -m repro top tcp:127.0.0.1:9460 --count 5
    python -m repro bench-report --history benchmarks/out/BENCH_history.jsonl
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import sys
import time
from typing import Optional, Sequence

from .adcl.checkpoint import CheckpointStore
from .adcl.resilience import Resilience
from .apps.fft import FFTConfig
from .bench import (
    OPERATION_KINDS,
    OverlapConfig,
    ResultCache,
    fft_methods,
    format_bars,
    format_table,
    function_set_for,
    run_overlap,
    run_overlap_ft,
    run_overlap_resilient,
    sweep_implementations,
)
from .nbc.schedule import schedule_cache_stats
from .obs import (
    TraceRecorder,
    attach_explanations,
    build_trace_doc,
    correlation_id,
    dump_trace,
    install,
    merge_snapshots,
    render_report,
)
from .obs.report import validate_or_errors
from .sim import FaultPlan, RankCrash, available_platforms, get_platform
from .units import fmt_time, parse_size

__all__ = ["main", "build_parser"]


def _parse_fault_plan(spec: str) -> FaultPlan:
    try:
        return FaultPlan.parse(spec)
    except Exception as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _parse_crashes(spec: str) -> tuple:
    """Parse the ``--crash`` mini-language: ``RANK@T[:RESPAWN][,...]``."""
    crashes = []
    for clause in spec.split(","):
        clause = clause.strip()
        if not clause:
            continue
        rank, _, when = clause.partition("@")
        if not when:
            raise argparse.ArgumentTypeError(
                f"crash clause {clause!r} must look like RANK@T[:RESPAWN]"
            )
        parts = when.split(":")
        try:
            respawn = float(parts[1]) if len(parts) > 1 else None
            crashes.append(RankCrash(int(rank), float(parts[0]), respawn))
        except Exception as exc:
            raise argparse.ArgumentTypeError(
                f"bad crash clause {clause!r}: {exc}"
            ) from exc
    if not crashes:
        raise argparse.ArgumentTypeError("empty --crash specification")
    return tuple(crashes)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Auto-tuning non-blocking collectives (paper reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("platforms", help="list simulated machine presets")

    def common(p):
        p.add_argument("--platform", default="whale",
                       help="machine preset (see `platforms`)")
        p.add_argument("--nprocs", type=int, default=16)
        p.add_argument("--nbytes", type=parse_size, default="64KB",
                       help="message size, e.g. 1KB / 128KB / 2MB")
        p.add_argument("--compute", type=float, default=10.0,
                       help="total loop compute seconds (paper convention)")
        p.add_argument("--loop-iterations", type=int, default=1000,
                       help="paper loop length the compute is spread over")
        p.add_argument("--iterations", type=int, default=20,
                       help="iterations actually simulated")
        p.add_argument("--nprogress", type=int, default=5)
        p.add_argument("--operation", default="alltoall",
                       choices=sorted(OPERATION_KINDS))
        p.add_argument("--faults", type=_parse_fault_plan, default=None,
                       metavar="SPEC",
                       help="fault-injection plan, e.g. "
                            "'drop=0.01@0.1:0.5,degrade=0:1:4:4,"
                            "straggler=3:2.5,rail=0:1@0.2,seed=7'")

    def perf_flags(p, parallel: bool = True):
        if parallel:
            p.add_argument("--jobs", type=int, default=1, metavar="N",
                           help="fabric worker processes to fan simulations "
                                "out over (1 = serial; results are "
                                "bit-identical either way)")
            p.add_argument("--result-cache", default=None, metavar="DIR",
                           help="keyed on-disk result cache directory; "
                                "repeated runs reuse finished simulations "
                                "and every completed task is checkpointed "
                                "to it immediately")
            p.add_argument("--resume", action="store_true",
                           help="continue a killed sweep from the last "
                                "completed task in --result-cache "
                                "(requires --result-cache)")
            p.add_argument("--task-timeout", type=float, default=60.0,
                           metavar="S",
                           help="fabric lease deadline per task in wall "
                                "seconds; an expired lease is reassigned "
                                "to another worker (default 60)")
            p.add_argument("--fabric-metrics", default=None, metavar="PATH",
                           help="write the sweep fabric's telemetry "
                                "(spawns, respawns, lease expiries, "
                                "steals) as a JSON metrics snapshot")
            p.add_argument("--chaos-kill-workers", type=int, default=0,
                           metavar="N",
                           help="chaos harness: SIGKILL N random fabric "
                                "workers mid-sweep (results must stay "
                                "bit-identical; used by CI)")
            p.add_argument("--chaos-seed", type=int, default=0,
                           help="seed for the chaos worker-killer RNG")
            p.add_argument("--telemetry", default=None, metavar="ENDPOINT",
                           help="serve a live read-only metrics exposition "
                                "for the sweep fabric at ENDPOINT "
                                "(unix:/path or tcp:HOST:PORT; scrape with "
                                "`repro top`)")
        p.add_argument("--stats", action="store_true",
                       help="print wall-clock time, events dispatched, "
                            "events/sec, schedule-cache hit rate and "
                            "fabric counters")

    def obs_flags(p):
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record a structured event trace and write it "
                            "as Chrome/Perfetto trace-event JSON "
                            "(inspect with `repro report` or ui.perfetto.dev)")
        p.add_argument("--metrics", default=None, metavar="PATH",
                       help="write a metrics-registry snapshot (counters, "
                            "gauges, histograms) as JSON")

    def serve_flags(p):
        p.add_argument("--serve", default=None, metavar="ENDPOINT",
                       help="consult the tuning daemon at ENDPOINT "
                            "(unix:/path or tcp:HOST:PORT); when the "
                            "daemon is unreachable the client degrades "
                            "to a bit-identical local computation")
        p.add_argument("--serve-timeout", type=float, default=2.0,
                       metavar="S",
                       help="per-RPC socket timeout for --serve "
                            "(default 2.0)")

    p_sweep = sub.add_parser(
        "sweep", help="time every implementation of an operation")
    common(p_sweep)
    perf_flags(p_sweep)
    obs_flags(p_sweep)
    serve_flags(p_sweep)

    p_tune = sub.add_parser("tune", help="run the ADCL selection logic")
    common(p_tune)
    perf_flags(p_tune, parallel=False)
    obs_flags(p_tune)
    p_tune.add_argument("--selector", default="brute_force",
                        choices=["brute_force", "heuristic", "factorial"])
    p_tune.add_argument("--evals", type=int, default=3,
                        help="measurements per candidate implementation")
    mode = p_tune.add_mutually_exclusive_group()
    mode.add_argument("--resilient", action="store_true",
                      help="tune under the resilience policy: watchdog + "
                           "restarts, candidate quarantine, drift re-tuning")
    mode.add_argument("--ft", action="store_true",
                      help="fault-tolerant tuning: survive rank crashes "
                           "in-simulation (revoke/agree/shrink recovery)")
    p_tune.add_argument("--crash", type=_parse_crashes, default=None,
                        metavar="SPEC",
                        help="rank crashes, e.g. '5@0.015' or "
                             "'5@0.015:1.0,2@0.02' (RANK@T[:RESPAWN], "
                             "comma-separated); combine with --ft to recover")
    p_tune.add_argument("--checkpoint", default=None, metavar="PATH",
                        help="checkpoint store file for tuning state "
                             "(with --ft); restores from it when present")
    p_tune.add_argument("--checkpoint-every", type=int, default=0,
                        metavar="N",
                        help="snapshot tuning state every N completed "
                             "iterations (with --ft and --checkpoint)")
    p_tune.add_argument("--unreliable", action="store_true",
                        help="naive transport: a dropped message is gone "
                             "(no ack/timeout/retransmit)")
    p_tune.add_argument("--deadline", type=float, default=None,
                        help="virtual-time watchdog deadline per simulation "
                             "(seconds; only with --resilient)")
    serve_flags(p_tune)

    p_fft = sub.add_parser("fft", help="run the 3-D FFT application kernel")
    p_fft.add_argument("--platform", default="whale")
    p_fft.add_argument("--nprocs", type=int, default=16)
    p_fft.add_argument("--n", type=int, default=160, help="FFT size (N^3)")
    p_fft.add_argument("--pattern", default="window_tiled",
                       choices=["pipelined", "tiled", "windowed", "window_tiled"])
    p_fft.add_argument("--iterations", type=int, default=12)
    p_fft.add_argument("--methods", nargs="+",
                       default=["libnbc", "adcl", "mpi"],
                       choices=["libnbc", "adcl", "adcl_ext", "mpi"])
    perf_flags(p_fft)

    p_serve = sub.add_parser(
        "serve", help="run the tuning knowledge daemon")
    listen = p_serve.add_mutually_exclusive_group(required=True)
    listen.add_argument("--socket", metavar="PATH",
                        help="listen on a unix socket at PATH")
    listen.add_argument("--host", metavar="HOST",
                        help="listen on TCP HOST (with --port)")
    p_serve.add_argument("--port", type=int, default=7453,
                         help="TCP port for --host (default 7453)")
    p_serve.add_argument("--data-dir", required=True, metavar="DIR",
                         help="knowledge-base directory (shard snapshots "
                              "+ write-ahead logs; survives SIGKILL)")
    p_serve.add_argument("--shards", type=int, default=4,
                         help="shard count (pinned in DIR/meta.json on "
                              "first use)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="compute threads running tuning simulations")
    p_serve.add_argument("--queue-capacity", type=int, default=16,
                         help="bounded admission queue; a full queue sheds "
                              "requests with an explicit busy reply")
    p_serve.add_argument("--request-timeout", type=float, default=30.0,
                         metavar="S",
                         help="server-side cap on one request's wait for "
                              "its computation")
    p_serve.add_argument("--cache-size", type=int, default=256,
                         help="LRU decision-cache entries")
    p_serve.add_argument("--checkpoint-every", type=int, default=32,
                         metavar="N",
                         help="committed decisions between automatic shard "
                              "checkpoints (0 = only on shutdown)")
    p_serve.add_argument("--metrics", default=None, metavar="PATH",
                         help="write the service metrics snapshot here on "
                              "shutdown")
    p_serve.add_argument("--audit", default=None, metavar="PATH",
                         help="write the service audit log (WAL "
                              "truncations, re-tune failures) here on "
                              "shutdown")
    p_serve.add_argument("--telemetry", default=None, metavar="ENDPOINT",
                         help="serve a live read-only Prometheus-style "
                              "metrics exposition at ENDPOINT "
                              "(unix:/path or tcp:HOST:PORT; scrape with "
                              "`repro top` or curl-style readers)")

    p_report = sub.add_parser(
        "report", help="summarize a trace recorded with --trace")
    p_report.add_argument("path", help="trace JSON file written by --trace")
    p_report.add_argument("--validate", action="store_true",
                          help="validate the trace against the schema and "
                               "exit (0 valid / 2 invalid)")
    p_report.add_argument("--timeline", action="store_true",
                          help="append an ASCII per-rank timeline")
    p_report.add_argument("--width", type=int, default=100,
                          help="timeline width in characters")
    p_report.add_argument("--critical-path", action="store_true",
                          help="append the critical-path profile: "
                               "per-candidate blame attribution and the "
                               "dominant dependency chain")
    p_report.add_argument("--overlay", default=None, metavar="PATH",
                          help="write a copy of the trace with the "
                               "critical-path flow arrows and decision "
                               "explanations attached (open in Perfetto)")

    p_merge = sub.add_parser(
        "trace-merge",
        help="stitch per-process trace files (workers, master, daemon) "
             "into one Perfetto document with disjoint pids")
    p_merge.add_argument("output", help="merged trace file to write")
    p_merge.add_argument("inputs", nargs="+", metavar="[LABEL=]PATH",
                         help="trace files in display order; an optional "
                              "LABEL= prefix names the source "
                              "(default: the file's basename)")

    p_top = sub.add_parser(
        "top", help="render live telemetry scraped from --telemetry "
                    "endpoints (serve daemon, sweep fabric)")
    p_top.add_argument("endpoints", nargs="+", metavar="ENDPOINT",
                       help="telemetry endpoints (unix:/path or "
                            "tcp:HOST:PORT)")
    p_top.add_argument("--count", type=int, default=1, metavar="N",
                       help="scrape N times (default 1; 0 = until "
                            "interrupted)")
    p_top.add_argument("--interval", type=float, default=1.0, metavar="S",
                       help="seconds between scrapes (default 1.0)")

    p_bench = sub.add_parser(
        "bench-report",
        help="summarize the accumulated perf-harness history "
             "(benchmarks/out/BENCH_history.jsonl)")
    p_bench.add_argument("--history",
                         default=os.path.join("benchmarks", "out",
                                              "BENCH_history.jsonl"),
                         metavar="PATH",
                         help="history file written by the perf harnesses")
    p_bench.add_argument("--window", type=int, default=5, metavar="N",
                         help="trend baseline: median of the last N prior "
                              "runs (default 5)")

    p_guide = sub.add_parser(
        "verify-guidelines",
        help="verify tuned decisions against performance guidelines "
             "(exit 0 compliant / 2 violations / 1 harness error)")
    p_guide.add_argument("--list-rules", action="store_true",
                         help="print the guideline rule catalogue and exit")
    p_guide.add_argument("--rules", default=None, metavar="IDS",
                         help="comma-separated rule IDs to check "
                              "(default: the full catalogue)")
    p_guide.add_argument("--platforms", default=None, metavar="NAMES",
                         help="comma-separated platform presets "
                              "(default: all shipped presets)")
    p_guide.add_argument("--operations", default="alltoall,bcast",
                         metavar="OPS",
                         help="comma-separated operations to probe")
    p_guide.add_argument("--selectors", default="brute_force",
                         metavar="NAMES",
                         help="comma-separated selection algorithms to "
                              "probe (brute_force/heuristic/factorial)")
    p_guide.add_argument("--tolerance", type=float, default=0.02,
                         help="relative margin a comparison may exceed its "
                              "bound by before it violates (default 0.02)")
    p_guide.add_argument("--fuzz", type=int, default=0, metavar="N",
                         help="check N randomly drawn probe geometries "
                              "instead of the fixed preset matrix")
    p_guide.add_argument("--seed", type=int, default=0,
                         help="fuzzer seed; the same seed reproduces the "
                              "same probes and byte-identical defect "
                              "reports")
    p_guide.add_argument("--max-nbytes", type=parse_size, default="256KB",
                         metavar="SIZE",
                         help="largest message size the fuzzer draws "
                              "(default 256KB)")
    p_guide.add_argument("--jobs", type=int, default=1, metavar="N",
                         help="fabric worker processes to fan probe checks "
                              "out over (1 = serial; results are "
                              "bit-identical either way)")
    p_guide.add_argument("--result-cache", default=None, metavar="DIR",
                         help="keyed on-disk result cache; finished probes "
                              "are checkpointed and reused")
    p_guide.add_argument("--resume", action="store_true",
                         help="continue a killed campaign from the last "
                              "completed probe (requires --result-cache)")
    p_guide.add_argument("--task-timeout", type=float, default=60.0,
                         metavar="S",
                         help="fabric lease deadline per probe in wall "
                              "seconds (default 60)")
    p_guide.add_argument("--fabric-metrics", default=None, metavar="PATH",
                         help="write the campaign fabric's telemetry as a "
                              "JSON metrics snapshot")
    p_guide.add_argument("--chaos-kill-workers", type=int, default=0,
                         metavar="N",
                         help="chaos harness: SIGKILL N random fabric "
                              "workers mid-campaign (results must stay "
                              "bit-identical; used by CI)")
    p_guide.add_argument("--chaos-seed", type=int, default=0,
                         help="seed for the chaos worker-killer RNG")
    p_guide.add_argument("--defects", default=None, metavar="PATH",
                         help="write the machine-readable defect reports "
                              "here (deterministic bytes)")
    p_guide.add_argument("--audit", default=None, metavar="PATH",
                         help="write a trace document whose audit log "
                              "carries the defect reports (validate with "
                              "`repro report --validate`)")
    p_guide.add_argument("--export-scenarios", default=None, metavar="DIR",
                         help="export each (minimized) defect as a "
                              "regression scenario JSON under DIR")
    p_guide.add_argument("--no-minimize", action="store_true",
                         help="report violations at their original probes "
                              "instead of greedily shrinking them first")
    p_guide.add_argument("--recheck", default=None, metavar="DIR",
                         help="re-run the regression scenarios under DIR "
                              "and verify each reproduces its recorded "
                              "defect fingerprint (0 all reproduce / 2 "
                              "drift)")
    return parser


def _print_stats(wall: float, events: int, cache: Optional[ResultCache],
                 engine: Optional[dict] = None,
                 fabric=None) -> None:
    """The ``--stats`` footer: wall-clock + throughput + cache efficacy
    + (for fabric runs) the PR-4 metrics-registry fabric counters."""
    rate = events / wall if wall > 0 else float("inf")
    print(f"\nwall-clock            {wall:.3f} s")
    print(f"events dispatched     {events}")
    print(f"events/sec            {rate:,.0f}")
    if engine:
        dispatched = engine.get("events_dispatched", 0)
        print(f"engine loop           {dispatched} "
              f"dispatched, {engine.get('compactions', 0)} heap "
              f"compactions, {engine.get('pending', 0)} pending at exit")
        batched = engine.get("batched_syscalls", 0)
        if batched:
            print(f"fast lane             {batched} syscalls batched "
                  f"({batched / max(dispatched, 1):.1%} of dispatched "
                  f"events)")
        # pool_<name>_<field> keys from Simulator.stats(); names may
        # themselves contain underscores, so match on the field suffix
        fields = ("capacity", "in_use", "high_water", "acquires",
                  "recycled", "grows", "armed")
        pools: dict = {}
        for key, value in engine.items():
            if not key.startswith("pool_"):
                continue
            for field in fields:
                if key.endswith("_" + field):
                    name = key[len("pool_"):-len(field) - 1]
                    pools.setdefault(name, {})[field] = value
                    break
        for name in sorted(pools):
            p = pools[name]
            used = p.get("in_use", p.get("armed", 0))
            print(f"pool {name:<16} {used}/{p.get('capacity', 0)} in use, "
                  f"high-water {p.get('high_water', 0)}"
                  + (f", {p.get('recycled', 0)} recycled, "
                     f"{p.get('grows', 0)} grows"
                     if "recycled" in p else ""))
    sstats = schedule_cache_stats()
    print(f"schedule cache        hit rate {sstats['hit_rate']:.1%} "
          f"({sstats['hits']} hits / {sstats['misses']} misses, "
          f"{sstats['entries']} entries)")
    if cache is not None:
        cstats = cache.stats()
        print(f"result cache          hit rate {cstats['hit_rate']:.1%} "
              f"({cstats['hits']} hits / {cstats['misses']} misses) "
              f"-> {cstats['directory']}")
    if fabric is not None:
        f = fabric.stats()

        def c(name):
            return f.get(f"fabric.{name}", 0)

        total = c("tasks.total") or 1
        print(f"sweep fabric          {c('workers.spawned')} workers "
              f"spawned ({c('workers.respawned')} respawned, "
              f"{c('workers.died')} died), "
              f"{c('leases.expired')} leases expired, "
              f"{c('tasks.stolen')} tasks stolen, "
              f"{c('tasks.quarantined')} quarantined")
        print(f"fabric resume         {c('resume.hits')}/{total} tasks "
              f"served from the checkpoint "
              f"({c('resume.hits') / total:.1%} hit rate)"
              + (", serial fallback engaged"
                 if c("fallback.serial") else ""))


def _write_obs_outputs(args, scenario: str, tasks, audit, metrics,
                       correlation: Optional[str] = None,
                       explain: bool = False) -> None:
    """Write the ``--trace`` / ``--metrics`` files a command requested.

    ``correlation`` stamps the trace envelope so ``trace-merge`` can
    tie this document to daemon/fabric traces of the same run;
    ``explain`` runs the critical-path profiler over the finished
    document and appends the deterministic "why this candidate
    won/lost" entries to its audit log.
    """
    if args.trace:
        doc = build_trace_doc(tasks, scenario=scenario, audit=audit,
                              metrics=metrics, correlation=correlation)
        if explain:
            attach_explanations(doc)
        dump_trace(doc, args.trace)
        print(f"trace written to {args.trace}  "
              f"(inspect: `python -m repro report {args.trace}`)")
    if args.metrics:
        with open(args.metrics, "w", encoding="utf-8") as fh:
            json.dump({"scenario": scenario, "metrics": metrics}, fh,
                      sort_keys=True, indent=2)
            fh.write("\n")
        print(f"metrics written to {args.metrics}")


def _overlap_config(args) -> OverlapConfig:
    faults = args.faults
    crashes = getattr(args, "crash", None)
    if crashes:
        base = faults if faults is not None else FaultPlan()
        faults = dataclasses.replace(base, crashes=base.crashes + crashes)
    return OverlapConfig(
        platform=args.platform,
        nprocs=args.nprocs,
        operation=args.operation,
        nbytes=args.nbytes,
        compute_total=args.compute,
        paper_iterations=args.loop_iterations,
        iterations=args.iterations,
        nprogress=args.nprogress,
        faults=faults,
        reliable=not getattr(args, "unreliable", False),
    )


def cmd_platforms() -> int:
    rows = []
    for name in available_platforms():
        plat = get_platform(name)
        rows.append([
            name,
            plat.nnodes,
            plat.cores_per_node,
            f"{plat.params.inter.beta / 1e9:.2f} GB/s",
            f"{plat.params.inter.alpha * 1e6:.0f} us",
            plat.description,
        ])
    print(format_table(
        ["name", "nodes", "cores/node", "inter bw", "latency", "description"],
        rows, title="simulated platform presets",
    ))
    return 0


def _fabric_config(args, cache, correlation: str = ""):
    """Build the sweep-fabric configuration for a parallel command.

    Returns ``None`` for serial runs.  ``--resume`` is only meaningful
    against a checkpoint, so it demands ``--result-cache``.
    """
    from .bench.fabric import FabricConfig

    if getattr(args, "resume", False) and cache is None:
        print("error: --resume continues a sweep from its checkpoint; "
              "pass the sweep's --result-cache DIR as well",
              file=sys.stderr)
        raise SystemExit(2)  # argparse's usage-error convention
    if args.jobs <= 1:
        return None
    defects = (os.path.join(args.result_cache, "fabric_defects.json")
               if args.result_cache else None)
    return FabricConfig(
        task_timeout=args.task_timeout,
        chaos_kills=getattr(args, "chaos_kill_workers", 0),
        chaos_seed=getattr(args, "chaos_seed", 0),
        defects_path=defects,
        correlation=correlation,
        telemetry_endpoint=getattr(args, "telemetry", None),
    )


def _finish_fabric(args, fabric) -> None:
    """Post-run fabric outputs: the --fabric-metrics snapshot."""
    if fabric is not None and getattr(args, "fabric_metrics", None):
        fabric.metrics.dump(args.fabric_metrics, scope="sweep-fabric")
        print(f"fabric metrics written to {args.fabric_metrics}")


def _serve_request(args) -> dict:
    """The tuning-service request the scenario flags describe."""
    return {
        "platform": args.platform,
        "operation": args.operation,
        "nprocs": args.nprocs,
        "nbytes": args.nbytes,
        "compute_total": args.compute,
        "paper_iterations": args.loop_iterations,
        "iterations": args.iterations,
        "nprogress": args.nprogress,
        "selector": getattr(args, "selector", "brute_force"),
        "evals": getattr(args, "evals", 3),
    }


def cmd_serve(args) -> int:
    from .serve import ServeConfig, TuningServer

    endpoint = (f"unix:{args.socket}" if args.socket
                else f"tcp:{args.host}:{args.port}")
    server = TuningServer(ServeConfig(
        endpoint=endpoint,
        data_dir=args.data_dir,
        shards=args.shards,
        workers=args.workers,
        queue_capacity=args.queue_capacity,
        request_timeout=args.request_timeout,
        cache_size=args.cache_size,
        checkpoint_every=args.checkpoint_every,
        metrics_path=args.metrics,
        audit_path=args.audit,
        telemetry_endpoint=args.telemetry,
    ))
    stats = server.kb.stats()
    print(f"tuning daemon on {endpoint}")
    if args.telemetry:
        print(f"telemetry exposition on {args.telemetry} "
              f"(scrape: `python -m repro top {args.telemetry}`)")
    print(f"knowledge base: {args.data_dir} "
          f"({stats['nshards']} shards, {stats['records']} records)")
    if stats["replayed_records"] or stats["truncated_bytes"]:
        print(f"crash recovery: replayed {stats['replayed_records']} WAL "
              f"records, truncated {stats['truncated_bytes']} torn bytes")
    check = server.guideline_check
    print(f"guideline cross-check: {check['records']} stored decision(s), "
          f"{check['violations']} monotonicity violation(s)"
          + (" — see the audit log" if check["violations"] else ""))
    print("serving until SIGTERM/SIGINT ...")
    server.serve_forever()
    print(f"drained and checkpointed; {len(server.kb)} records on disk")
    return 0


def cmd_tune_serve(args) -> int:
    """``tune --serve``: ask the daemon, degrade locally if it is gone."""
    from .serve import TuningClient
    from .serve.core import history_key, normalize_request

    for flag in ("resilient", "ft"):
        if getattr(args, flag):
            print(f"error: --serve cannot be combined with --{flag} "
                  f"(the service computes plain scenarios only)",
                  file=sys.stderr)
            raise SystemExit(2)
    if args.crash or args.faults or args.trace or args.metrics:
        print("error: --serve cannot be combined with --crash/--faults/"
              "--trace/--metrics (the computation may happen in the "
              "daemon's process)", file=sys.stderr)
        raise SystemExit(2)
    cfg = _overlap_config(args)
    req = normalize_request(_serve_request(args))
    corr = correlation_id(f"tune-serve|{cfg.describe()}|{args.selector}")
    client = TuningClient(args.serve, timeout=args.serve_timeout,
                          correlation=corr)
    print(f"tuning {cfg.describe()} via the tuning service at {args.serve} "
          f"[corr {corr}]")
    print(f"network budget before degrading: {client.budget():.1f}s")
    warm = client.warm(req)
    if warm is not None and warm.get("decision"):
        geo = warm.get("request") or {}
        print(f"warm hint: nearest geometry P{geo.get('nprocs')}"
              f":B{geo.get('nbytes')} decided "
              f"{warm['decision'].get('winner')!r}")
    t0 = time.perf_counter()
    record = client.decide(req)
    wall = time.perf_counter() - t0
    decision = record["decision"]
    if record["source"] == "service":
        print(f"answered by the service in {wall:.2f}s "
              f"(origin: {record.get('service_source')}, "
              f"version {record.get('version')})")
        # feed the drift detector a baseline-consistent measurement so
        # the daemon has a report stream to compare future runs against
        client.report(req, decision["mean_after_learning"])
    else:
        print(f"service unavailable — computed locally in {wall:.2f}s "
              f"(bit-identical to the daemon's answer)")
    print(f"history key: {history_key(req)}")
    print(f"\ndecision at iteration {decision['decided_at']}: "
          f"{decision['winner']!r}")
    print(f"steady-state iteration time "
          f"{fmt_time(decision['mean_after_learning'])}")
    return 0


def cmd_sweep(args) -> int:
    cfg = _overlap_config(args)
    fnset = function_set_for(args.operation)
    cache = ResultCache(args.result_cache) if args.result_cache else None
    # the correlation id is a pure function of the scenario (or
    # inherited from REPRO_CORR_ID), so serial and fabric sweeps mint
    # the same id and their trace docs stay byte-identical
    corr = correlation_id(f"sweep|{cfg.describe()}")
    fabric = _fabric_config(args, cache, correlation=corr)
    trace_on = bool(args.trace or args.metrics)
    where = f" ({args.jobs} fabric workers)" if args.jobs > 1 else ""
    serve_client = serve_key = None
    if args.serve:
        from .serve import TuningClient
        from .serve.core import history_key, normalize_request

        req = normalize_request(_serve_request(args))
        serve_client = TuningClient(args.serve, timeout=args.serve_timeout,
                                    correlation=corr)
        serve_key = f"adcl:{history_key(req)}"
        prior = serve_client.lookup(serve_key)
        if prior is not None and prior.get("decision"):
            print(f"knowledge base already holds "
                  f"{prior['decision'].get('winner')!r} for this scenario "
                  f"(version {prior.get('version')}); sweeping anyway")
    print(f"sweeping {len(fnset)} implementations of {cfg.describe()}{where} ...")
    t0 = time.perf_counter()
    rows = sweep_implementations(cfg, jobs=args.jobs, cache=cache,
                                 trace=trace_on, fabric=fabric)
    wall = time.perf_counter() - t0
    if serve_client is not None:
        best = min(rows, key=lambda row: row["mean_iteration"])
        pushed = serve_client.record(
            serve_key, {"winner": best["name"], "decided_at": 0})
        print(f"winner {best['name']!r} "
              + (f"recorded in the knowledge base as {serve_key}"
                 if pushed else
                 "NOT recorded (tuning service unreachable)"))
    if args.resume and cache is not None:
        print(f"resumed: {cache.hits}/{len(rows)} tasks served from the "
              f"checkpoint in {cache.directory}")
    times = {row["name"]: row["mean_iteration"] for row in rows}
    print()
    print(format_bars(times, title="mean iteration time per implementation"))
    if trace_on:
        # one Chrome process per implementation, assembled in task order
        # so serial/parallel/cached sweeps produce byte-identical docs
        _write_obs_outputs(
            args, cfg.describe(),
            [(row["name"], row["trace"], row["worlds"]) for row in rows],
            audit=None,
            metrics=merge_snapshots([row["metrics"] for row in rows]),
            correlation=corr,
        )
    if args.stats:
        engine: dict = {}
        for row in rows:
            for k, v in (row.get("engine_stats") or {}).items():
                engine[k] = engine.get(k, 0) + v
        _print_stats(wall, sum(row["events"] for row in rows), cache,
                     engine or None, fabric=fabric)
    _finish_fabric(args, fabric)
    return 0


def cmd_tune(args) -> int:
    if args.serve:
        return cmd_tune_serve(args)
    cfg = _overlap_config(args)
    fnset = function_set_for(args.operation)
    recorder = prev = None
    if args.trace or args.metrics:
        recorder = TraceRecorder()
        prev = install(recorder)
    t0 = time.perf_counter()
    try:
        if args.resilient:
            res = run_overlap_resilient(
                cfg, selector=args.selector, evals_per_function=args.evals,
                resilience=Resilience(deadline=args.deadline),
            )
        elif args.ft:
            store = None
            restore_from = None
            if args.checkpoint is not None:
                store = CheckpointStore(args.checkpoint)
                key = f"{cfg.operation}@{cfg.platform}:B{cfg.nbytes}"
                restore_from = store.load(key)
            res = run_overlap_ft(
                cfg, selector=args.selector, evals_per_function=args.evals,
                checkpoint=store, checkpoint_every=args.checkpoint_every,
                restore_from=restore_from,
            )
        else:
            res = run_overlap(cfg, selector=args.selector,
                              evals_per_function=args.evals)
    finally:
        if recorder is not None:
            install(prev)
    wall = time.perf_counter() - t0
    mode = ("resilient " if args.resilient
            else "fault-tolerant " if args.ft else "")
    print(f"tuning {cfg.describe()} with the {mode}{args.selector} selector")
    if cfg.faults is not None and not cfg.faults.empty:
        print(f"faults: {cfg.faults.describe()}")
    print()
    for rec, name in zip(res.records, res.fn_names):
        phase = "learn " if rec.learning else "steady"
        print(f"  iter {rec.iteration:>3} [{phase}] {name:<22} "
              f"{fmt_time(rec.seconds)}")
    if args.resilient:
        for idx, reason in res.quarantine_log:
            print(f"\nquarantined {fnset[idx].name!r}: {reason.splitlines()[0]}")
        if res.restarts:
            print(f"restarts after aborted measurements: {res.restarts}")
        if res.retunes:
            print(f"drift-triggered re-tunes: {res.retunes}")
        if res.messages_dropped:
            print(f"messages dropped: {res.messages_dropped}, "
                  f"retransmitted: {res.retransmits}")
    if args.ft:
        if res.restored_epoch:
            print(f"\nwarm start: restored tuning state at epoch "
                  f"{res.restored_epoch} from {args.checkpoint}")
        if res.dead:
            print(f"\nrank crashes: {res.dead}  "
                  f"repairs: {res.repairs}  survivors: {res.survivors}")
            agreed = sorted({w or "-" for w in res.agreed_winner.values()})
            print(f"agreed winner on all {len(res.agreed_winner)} "
                  f"survivors: {', '.join(agreed)}")
        if res.checkpoints_written:
            print(f"checkpoints written: {res.checkpoints_written} "
                  f"-> {args.checkpoint}")
    if recorder is not None:
        _write_obs_outputs(
            args, cfg.describe(),
            [(f"tune:{cfg.operation}", recorder.export_events(),
              recorder.worlds)],
            audit=recorder.audit.to_json(),
            metrics=recorder.metrics.snapshot(),
            correlation=correlation_id(
                f"tune|{cfg.describe()}|{args.selector}"),
            explain=True,
        )
    if args.stats:
        _print_stats(wall, res.events, None,
                     getattr(res, "engine_stats", None))
    if res.winner is None:
        print("\nno decision yet — increase --iterations")
        return 1
    print(f"\ndecision at iteration {res.decided_at}: {res.winner!r}")
    print(f"steady-state iteration time {fmt_time(res.mean_after_learning())}")
    return 0


def cmd_fft(args) -> int:
    print(f"3-D FFT N={args.n}^3, P={args.nprocs} on {args.platform}, "
          f"pattern={args.pattern}\n")
    cfg = FFTConfig(
        n=args.n, nprocs=args.nprocs, platform=args.platform,
        pattern=args.pattern, iterations=args.iterations,
        evals_per_function=2,
    )
    cache = ResultCache(args.result_cache) if args.result_cache else None
    fabric = _fabric_config(args, cache)
    t0 = time.perf_counter()
    summaries = fft_methods(cfg, args.methods, jobs=args.jobs, cache=cache,
                            fabric=fabric)
    wall = time.perf_counter() - t0
    if args.resume and cache is not None:
        print(f"resumed: {cache.hits}/{len(summaries)} tasks served from "
              f"the checkpoint in {cache.directory}")
    rows = [
        [
            row["method"],
            fmt_time(row["mean_iteration"]),
            fmt_time(row["mean_after_learning"]),
            row["winner"] or "-",
        ]
        for row in summaries
    ]
    print(format_table(
        ["method", "mean iteration", "steady state", "selected"],
        rows,
    ))
    if args.stats:
        _print_stats(wall, sum(row["events"] for row in summaries), cache,
                     fabric=fabric)
    _finish_fabric(args, fabric)
    return 0


def _csv(value: Optional[str]) -> Optional[list]:
    """Split a comma-separated CLI value; None passes through."""
    if value is None:
        return None
    return [item.strip() for item in value.split(",") if item.strip()]


def _guideline_recheck(args) -> int:
    """``verify-guidelines --recheck``: replay the regression corpus."""
    from .guidelines import GuidelineEngine, discover_scenarios, \
        recheck_scenario

    scenarios = discover_scenarios(args.recheck)
    if not scenarios:
        print(f"no regression scenarios under {args.recheck}")
        return 0
    engine = GuidelineEngine()
    drifted = 0
    for scenario in scenarios:
        result = recheck_scenario(scenario, engine=engine)
        name = os.path.basename(scenario["path"])
        if result["reproduced"]:
            print(f"  {name}: reproduced")
        else:
            drifted += 1
            actual = ", ".join(fp[:12] for fp in result["actual"]) or "none"
            print(f"  {name}: DRIFTED (expected "
                  f"{result['expected'][:12]}, got {actual})")
    print(f"\n{len(scenarios)} scenario(s), {drifted} drifted")
    if drifted:
        print("a drifted scenario means the violation stopped reproducing "
              "bit-identically: either the defect was fixed (retire the "
              "scenario) or the evidence changed shape (investigate)")
    return 2 if drifted else 0


def cmd_verify_guidelines(args) -> int:
    from .guidelines import (
        RULES,
        GuidelineEngine,
        defect_from_violation,
        fuzz_probes,
        minimize_violation,
        preset_probes,
        record_defects,
        rules_by_id,
        run_campaign,
        save_scenario,
        scenario_from_defect,
        write_defect_reports,
    )
    from .obs.audit import AuditLog

    if args.list_rules:
        print("performance-guideline rule catalogue:")
        for rule in RULES:
            print(f"  {rule.describe()}")
        return 0

    try:
        rule_ids = _csv(args.rules)
        if rule_ids is not None:
            rules_by_id(rule_ids)  # unknown IDs are harness errors

        if args.recheck:
            return _guideline_recheck(args)

        platforms = _csv(args.platforms) or available_platforms()
        operations = _csv(args.operations) or ["alltoall", "bcast"]
        selectors = _csv(args.selectors) or ["brute_force"]
        cache = ResultCache(args.result_cache) if args.result_cache else None
        fabric = _fabric_config(args, cache)

        if args.fuzz > 0:
            probes = fuzz_probes(
                args.fuzz, seed=args.seed, platforms=platforms,
                operations=operations, selectors=selectors,
                tolerance=args.tolerance, max_nbytes=args.max_nbytes)
            what = f"{len(probes)} fuzzed probes (seed {args.seed})"
        else:
            probes = []
            for selector in selectors:
                probes.extend(preset_probes(
                    platforms, operations, tolerance=args.tolerance,
                    selector=selector))
            what = f"the {len(probes)}-probe preset matrix"
        nrules = len(rule_ids) if rule_ids is not None else len(RULES)
        print(f"verifying {nrules} guideline rule(s) over {what} "
              f"[{', '.join(platforms)}]")

        campaign = run_campaign(probes, rules=rule_ids, jobs=args.jobs,
                                cache=cache, fabric=fabric)
        violations = campaign["violations"]

        reports = []
        if violations:
            engine = GuidelineEngine()
            seen = set()
            for violation in violations:
                if not args.no_minimize:
                    violation = minimize_violation(violation, engine=engine)
                report = defect_from_violation(violation)
                if report["fingerprint"] in seen:
                    continue  # distinct probes can shrink to one defect
                seen.add(report["fingerprint"])
                reports.append(report)

        print(f"checked {campaign['checked']} probe(s): "
              f"{len(reports)} defect(s)")
        for report in reports:
            print(f"  [{report['rule']}] {report['reason']}")
            print(f"    fingerprint {report['fingerprint'][:12]}  "
                  f"probe {report['key'][len('guideline:'):]}")

        if args.defects:
            write_defect_reports(args.defects, reports)
            print(f"defect reports written to {args.defects}")
        if args.audit:
            audit = AuditLog()
            record_defects(audit, reports)
            doc = build_trace_doc([], scenario="verify-guidelines",
                                  audit=audit.to_json())
            dump_trace(doc, args.audit)
            print(f"audit trace written to {args.audit}  "
                  f"(validate: `python -m repro report --validate "
                  f"{args.audit}`)")
        if args.export_scenarios:
            for report in reports:
                path = save_scenario(args.export_scenarios,
                                     scenario_from_defect(report))
                print(f"regression scenario exported to {path}")
        _finish_fabric(args, fabric)
        return 2 if reports else 0
    except SystemExit:
        raise
    except Exception as exc:  # harness failure, not a finding
        print(f"guideline harness error: {exc}", file=sys.stderr)
        return 1


def cmd_report(args) -> int:
    doc, errors = validate_or_errors(args.path)
    if errors:
        print(f"{args.path}: INVALID trace ({len(errors)} error(s))")
        for err in errors:
            print(f"  - {err}")
        return 2
    if args.validate:
        print(f"{args.path}: valid trace "
              f"(schema {doc['repro']['schema']}, "
              f"{len(doc.get('traceEvents', []))} events)")
        return 0
    print(render_report(doc, timeline=args.timeline, width=args.width,
                        critical_path=args.critical_path))
    if args.overlay:
        from .obs import overlay_critical_path

        dump_trace(overlay_critical_path(doc), args.overlay)
        print(f"\ncritical-path overlay written to {args.overlay}  "
              f"(open in ui.perfetto.dev; the flow arrows trace the "
              f"dominant chain)")
    return 0


def cmd_trace_merge(args) -> int:
    """``trace-merge``: stitch per-process traces into one document."""
    from .obs.schema import validate_trace
    from .obs.telemetry import merge_trace_docs

    sources = []
    for spec in args.inputs:
        label, sep, path = spec.partition("=")
        if not sep:
            label, path = "", spec
        if not label:
            label = os.path.basename(path)
            if label.endswith(".json"):
                label = label[: -len(".json")]
        try:
            with open(path, "r", encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read trace {path!r}: {exc}",
                  file=sys.stderr)
            return 2
        sources.append((label, doc))
    merged = merge_trace_docs(sources)
    try:
        validate_trace(merged)
    except Exception as exc:
        print(f"error: merged document is not a valid trace: {exc}",
              file=sys.stderr)
        return 2
    dump_trace(merged, args.output)
    env = merged["repro"]
    corr = env.get("correlation")
    print(f"merged {len(sources)} trace(s) -> {args.output}  "
          f"({len(merged.get('traceEvents', []))} events, "
          f"{len(env.get('sources', []))} sources"
          + (f", correlation {corr}" if corr else "") + ")")
    for src in env.get("sources", []):
        note = (f" [corr {src['correlation']}]"
                if src.get("correlation") else "")
        lo = src["pid_offset"]
        hi = lo + src["pids"] - 1
        print(f"  {src['label']}: pids {lo}..{hi}{note}")
    if not corr and len(sources) > 1:
        print("note: sources carry differing (or missing) correlation "
              "ids — stitched by position, not by run identity")
    return 0


def _render_top(endpoint: str, parsed: dict) -> str:
    """One scrape, rendered as a compact live-telemetry panel."""
    scope = ""
    counters, gauges, histograms = [], [], []
    for name, metric in sorted(parsed.items()):
        if name == "_scope":
            scope = metric["value"]
        elif metric["type"] == "counter":
            counters.append((name, metric["value"]))
        elif metric["type"] == "gauge":
            gauges.append((name, metric["value"]))
        elif metric["type"] == "histogram":
            histograms.append((name, metric))
    lines = [f"== {endpoint}" + (f"  [{scope}]" if scope else "")]
    for name, value in gauges:
        lines.append(f"  {name:<44} {value:>12g}")
    for name, value in counters:
        lines.append(f"  {name:<44} {value:>12g}  (total)")
    for name, h in histograms:
        total = h.get("total", 0)
        mean = (h.get("sum", 0.0) / total) if total else 0.0
        lines.append(f"  {name:<44} {total:>12g}  (mean {mean:g})")
    if len(lines) == 1:
        lines.append("  (no metrics exposed yet)")
    return "\n".join(lines)


def cmd_top(args) -> int:
    """``top``: scrape telemetry endpoints and render them."""
    from .obs.telemetry import parse_exposition, scrape

    rounds = 0
    failures = 0
    while True:
        rounds += 1
        panels = []
        for endpoint in args.endpoints:
            try:
                text = scrape(endpoint)
            except OSError as exc:
                failures += 1
                panels.append(f"== {endpoint}\n  unreachable: {exc}")
                continue
            panels.append(_render_top(endpoint, parse_exposition(text)))
        print("\n".join(panels))
        if args.count and rounds >= args.count:
            break
        print()
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            break
    # every endpoint unreachable on every round = operational error
    return 1 if failures == rounds * len(args.endpoints) else 0


def cmd_bench_report(args) -> int:
    """``bench-report``: summarize the perf-harness run history."""
    from .bench.history import load_history, render_history_report

    if not os.path.exists(args.history):
        print(f"no history at {args.history} — run the perf harness "
              f"(pytest benchmarks/) to start one")
        return 0
    entries = load_history(args.history)
    print(render_history_report(entries, window=args.window))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "platforms":
        return cmd_platforms()
    if args.command == "sweep":
        return cmd_sweep(args)
    if args.command == "tune":
        return cmd_tune(args)
    if args.command == "fft":
        return cmd_fft(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "report":
        return cmd_report(args)
    if args.command == "trace-merge":
        return cmd_trace_merge(args)
    if args.command == "top":
        return cmd_top(args)
    if args.command == "bench-report":
        return cmd_bench_report(args)
    if args.command == "verify-guidelines":
        return cmd_verify_guidelines(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover
