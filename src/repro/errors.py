"""Exception hierarchy for the :mod:`repro` library.

All library-specific errors derive from :class:`ReproError` so callers can
catch everything raised by this package with one ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """A structural problem inside the discrete-event simulator.

    Raised e.g. when a rank program misbehaves (yields an unknown syscall,
    finishes while holding pending requests) or when the event loop is
    driven incorrectly.
    """


class DeadlockError(SimulationError):
    """The event queue drained while at least one rank was still blocked.

    This is the simulated equivalent of an MPI deadlock: every process is
    waiting on a request that can no longer complete.
    """


class MatchingError(SimulationError):
    """A message could not be matched (communicator/tag/peer misuse)."""


class FaultError(SimulationError):
    """Misuse or misconfiguration of the fault-injection layer."""


class MessageLostError(FaultError):
    """A message was dropped more times than the transport will retransmit.

    Raised by the reliable transport in :mod:`repro.sim.mpi` once a
    message exhausts ``max_retries`` retransmission attempts (e.g. a
    permanent 100%%-loss window or a node whose NIC rails all failed).
    """


class RankFailedError(SimulationError):
    """An operation involves a crashed rank (ULFM ``MPI_ERR_PROC_FAILED``).

    Raised inside a rank program when it posts to a dead peer, waits on a
    request that can only be completed by a dead peer, or progresses a
    collective whose schedule depends on one.  A program that does not
    catch it propagates the error out of :meth:`repro.sim.mpi.SimWorld.
    run` — the simulated equivalent of the default ``MPI_ERRORS_ARE_
    FATAL``; a fault-tolerant program catches it and repairs the
    communicator (revoke / shrink / agree).  :attr:`dead` carries the
    world ranks known dead when the error was raised.
    """

    def __init__(self, message: str, dead: frozenset = frozenset()):
        super().__init__(message)
        #: world ranks known dead when the error was raised
        self.dead = frozenset(dead)


class CommRevokedError(SimulationError):
    """An operation was posted on (or interrupted by) a revoked communicator.

    The ULFM recovery pattern: the first rank observing a failure calls
    :meth:`repro.sim.mpi.SimComm.revoke`, which interrupts every other
    member's pending operations on that communicator so the whole group
    converges into the repair path instead of hanging on a half-dead
    collective.
    """


class WatchdogTimeout(SimulationError):
    """The virtual-time watchdog expired with ranks still blocked.

    Raised by :meth:`repro.sim.mpi.SimWorld.run` when a ``deadline`` was
    given and the job did not finish by that virtual time.  Unlike
    :class:`DeadlockError` the simulation may still have had live events
    pending — the job was *stalled*, not provably deadlocked — but for a
    tuner measuring candidates the distinction does not matter: the
    candidate blew its budget and can be quarantined.
    """


class ScheduleError(ReproError):
    """An NBC schedule was malformed or used after completion."""


class AdclError(ReproError):
    """Misuse of the ADCL API (bad function-set, timer state, ...)."""


class SelectionError(AdclError):
    """The runtime selection logic was configured inconsistently."""


class HistoryError(AdclError):
    """The historic-learning store is unreadable or corrupt."""


class CheckpointError(AdclError):
    """A tuning-state checkpoint is missing, corrupt or incompatible.

    Raised by :mod:`repro.adcl.checkpoint` when a snapshot cannot be
    restored into the request it is offered to (different function-set,
    different candidate list, malformed journal).
    """


class GuidelineError(ReproError):
    """The performance-guideline verification harness itself failed.

    Raised by :mod:`repro.guidelines` when a probe cannot be evaluated
    (unknown rule, scenario that reaches no decision, malformed
    regression scenario file) — as opposed to a guideline *violation*,
    which is a finding, not an error, and is reported as a defect.
    The CLI maps this to exit code 1 (harness error), distinct from
    exit code 2 (violations found).
    """


class ServeError(ReproError):
    """The tuning service (:mod:`repro.serve`) was misused or failed.

    Base class for daemon-side configuration problems (incompatible
    shard layout, bad endpoint) and for typed request failures the
    daemon reports back to clients (a scenario that cannot reach a
    decision).  A *transport* failure — daemon unreachable, request
    shed — is :class:`ServiceUnavailable` instead, because the client
    is expected to degrade, not die, on those.
    """


class ServiceUnavailable(ServeError):
    """The daemon could not be reached (or shed the request) within the
    client's retry budget.

    Raised by :class:`repro.serve.client.TuningClient` only when local
    fallback is disabled; with fallback enabled (the default, and the
    mandatory configuration for production clients) the client degrades
    to in-process tuning instead of raising.
    """
