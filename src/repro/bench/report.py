"""Plain-text reporting for benchmark results (paper-style tables/bars).

The paper presents its evaluation as bar charts (Figs. 2-7) and grouped
bars per FFT pattern (Figs. 9-12).  The benchmark harness regenerates
the same *series* as text: one table per figure, plus ASCII bars so the
orderings are visible at a glance in CI logs.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from ..units import fmt_time

__all__ = ["format_table", "format_bars", "format_series"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append(sep)
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_bars(
    values: Mapping[str, float],
    title: Optional[str] = None,
    width: int = 46,
    mark_best: bool = True,
) -> str:
    """Render a labelled horizontal bar chart of times (lower = better)."""
    if not values:
        return title or ""
    vmax = max(values.values())
    best = min(values, key=values.get)
    label_w = max(len(k) for k in values)
    lines = []
    if title:
        lines.append(title)
    for name, v in values.items():
        bar = "#" * max(1, round(width * v / vmax)) if vmax > 0 else ""
        star = "  <-- best" if (mark_best and name == best) else ""
        lines.append(f"  {name.ljust(label_w)} {fmt_time(v):>12} {bar}{star}")
    return "\n".join(lines)


def format_series(
    x_label: str,
    xs: Sequence[object],
    series: Mapping[str, Sequence[float]],
    title: Optional[str] = None,
) -> str:
    """Render one-row-per-x multi-series data (a figure's line chart)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(xs):
        row = [x] + [fmt_time(series[name][i]) for name in series]
        rows.append(row)
    return format_table(headers, rows, title=title)
