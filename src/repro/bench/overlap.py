"""The overlap micro-benchmark (§IV-A).

The benchmark executes a loop; each iteration

1. initiates the non-blocking collective,
2. executes a compute phase split into ``nprogress`` equal chunks with a
   progress call after each chunk,
3. calls the completion function.

The compute time per iteration is an input (the paper quotes the *total*
loop compute time, e.g. "50 s compute" over 1000 iterations);  ideally
the measured loop time equals the pure compute time — any excess is
communication that could not be overlapped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..adcl.fnsets import (
    iallgatherv_function_set,
    iallreduce_function_set,
    ialltoall_extended_function_set,
    ialltoall_function_set,
    ibcast_function_set,
    ireduce_scatter_function_set,
)
from ..adcl.function import CollSpec, FunctionSet
from ..adcl.request import ADCLRequest
from ..adcl.resilience import Resilience
from ..adcl.selection.base import FixedSelector, Selector
from ..adcl.timer import ADCLTimer, TimerRecord
from ..errors import DeadlockError, MessageLostError, ReproError, WatchdogTimeout
from ..sim import (
    Barrier,
    ComputeProgressSpan,
    FaultPlan,
    NoiseModel,
    SimWorld,
    get_platform,
)

__all__ = [
    "OverlapConfig",
    "OverlapResult",
    "ResilientOverlapResult",
    "function_set_for",
    "run_overlap",
    "run_overlap_resilient",
]


#: benchmark operation -> the :class:`CollSpec` kind it tunes
OPERATION_KINDS = {
    "alltoall": "alltoall",
    "alltoall_ext": "alltoall",
    "alltoall_hier": "alltoall",
    "bcast": "bcast",
    "bcast_hier": "bcast",
    "allgatherv": "allgatherv",
    "reduce_scatter": "reduce_scatter",
    "allreduce": "allreduce",
}


def function_set_for(operation: str) -> FunctionSet:
    """The ADCL function-set used for one benchmark operation."""
    if operation == "alltoall":
        return ialltoall_function_set()
    if operation == "alltoall_ext":
        return ialltoall_extended_function_set()
    if operation == "alltoall_hier":
        return ialltoall_function_set(hierarchical=True)
    if operation == "bcast":
        return ibcast_function_set()
    if operation == "bcast_hier":
        return ibcast_function_set(hierarchical=True)
    if operation == "allgatherv":
        return iallgatherv_function_set()
    if operation == "reduce_scatter":
        return ireduce_scatter_function_set()
    if operation == "allreduce":
        return iallreduce_function_set()
    raise ReproError(
        f"unknown benchmark operation {operation!r}; "
        f"expected one of {', '.join(sorted(OPERATION_KINDS))}"
    )


@dataclass(frozen=True)
class OverlapConfig:
    """One micro-benchmark scenario.

    ``compute_total`` and ``paper_iterations`` mirror the paper's
    reporting ("50 s compute over 1000 iterations"); the simulation runs
    ``iterations`` of them (fewer by default — the per-iteration shape
    is what matters) with ``compute_total / paper_iterations`` seconds
    of computation each.
    """

    platform: str = "whale"
    nprocs: int = 32
    operation: str = "alltoall"       # any key of OPERATION_KINDS
    nbytes: int = 128 * 1024          # per pair (alltoall) / total (bcast)
    compute_total: float = 50.0       # seconds over the whole paper loop
    paper_iterations: int = 1000
    iterations: int = 30              # iterations actually simulated
    nprogress: int = 5                # progress calls per iteration
    placement: str = "block"
    noise_sigma: float = 0.0
    noise_outlier_prob: float = 0.0
    seed: int = 0
    #: fault-injection plan (None or an empty plan: pristine network)
    faults: Optional[FaultPlan] = None
    #: reliable transport (ack/timeout/retransmit); False models a naive
    #: transport where a dropped message is simply gone
    reliable: bool = True
    max_retries: int = 8

    @property
    def compute_per_iteration(self) -> float:
        return self.compute_total / self.paper_iterations

    def noise(self) -> Optional[NoiseModel]:
        if self.noise_sigma == 0.0 and self.noise_outlier_prob == 0.0:
            return None
        return NoiseModel(sigma=self.noise_sigma,
                          outlier_prob=self.noise_outlier_prob,
                          seed=self.seed)

    def describe(self) -> str:
        return (
            f"{self.operation}@{self.platform} P={self.nprocs} "
            f"B={self.nbytes} compute={self.compute_total}s "
            f"progress={self.nprogress}"
        )


@dataclass
class OverlapResult:
    """Outcome of one micro-benchmark execution."""

    config: OverlapConfig
    #: per-iteration (max over ranks) loop times, in completion order
    records: list[TimerRecord]
    #: function name per records entry
    fn_names: list[str]
    winner: Optional[str]
    decided_at: Optional[int]
    makespan: float
    events: int
    #: event-loop counters from :meth:`repro.sim.engine.Simulator.stats`
    #: (summed over runs when the benchmark restarts simulations)
    engine_stats: dict

    @property
    def total_time(self) -> float:
        return sum(r.seconds for r in self.records)

    @property
    def mean_iteration(self) -> float:
        return self.total_time / len(self.records)

    def robust_mean_iteration(self, method: str = "cluster") -> float:
        """Outlier-filtered mean iteration time (what ADCL itself sees)."""
        from ..adcl.statistics import robust_mean

        return robust_mean([r.seconds for r in self.records], method=method)

    def mean_after_learning(self, robust: bool = False) -> float:
        """Mean iteration time once the decision has been made."""
        tail = [r.seconds for r in self.records if not r.learning]
        if not tail:
            return self.mean_iteration
        if robust:
            from ..adcl.statistics import robust_mean

            return robust_mean(tail)
        return sum(tail) / len(tail)

    def projected_total(self) -> float:
        """Extrapolate to the paper's full iteration count.

        Learning iterations are counted once; the remaining iterations
        are costed at the post-learning mean.
        """
        cfg = self.config
        learn = [r.seconds for r in self.records if r.learning]
        steady = self.mean_after_learning()
        remaining = max(cfg.paper_iterations - len(learn), 0)
        return sum(learn) + steady * remaining


def run_overlap(
    config: OverlapConfig,
    selector: Union[str, Selector, int] = "brute_force",
    evals_per_function: int = 5,
    filter_method: str = "cluster",
    history=None,
    fnset: Optional[FunctionSet] = None,
) -> OverlapResult:
    """Execute the micro-benchmark.

    ``selector`` is a selection-logic name, a :class:`Selector`
    instance, or an ``int`` — the latter runs a *verification run* with
    that single fixed implementation, circumventing the selection logic.
    ``fnset`` replaces the operation's standard candidate pool; the
    guideline checker uses this to measure mock-up candidates with the
    exact same loop, timer and network model as the tuned decision.
    """
    world = SimWorld(
        get_platform(config.platform),
        config.nprocs,
        noise=config.noise(),
        placement=config.placement,
        faults=config.faults,
        reliable=config.reliable,
        max_retries=config.max_retries,
    )
    if fnset is None:
        fnset = function_set_for(config.operation)
    kind = OPERATION_KINDS.get(config.operation, "alltoall")
    spec = CollSpec(kind, world.comm_world, config.nbytes)
    if isinstance(selector, int):
        selector = FixedSelector(fnset, selector)
    areq = ADCLRequest(
        fnset,
        spec,
        selector=selector,
        evals_per_function=evals_per_function,
        filter_method=filter_method,
        history=history,
    )
    timer = ADCLTimer(areq)
    chunk = config.compute_per_iteration / max(config.nprogress, 1)

    # a fully non-blocking set lets the loop start operations with a
    # plain call instead of a generator delegation per iteration
    nonblocking_set = not any(fn.blocking for fn in fnset)

    def factory(ctx):
        barrier = Barrier()
        nprogress = config.nprogress
        for _ in range(config.iterations):
            timer.start(ctx)
            if nonblocking_set:
                areq.start_now(ctx)
            else:
                yield from areq.start(ctx)
            # one span replaces the (Compute, Progress) * nprogress pair
            # stream: bit-identical charges and event schedule, but the
            # driver steps the chunks internally, which lets the array
            # engine collapse the post-completion tail (DESIGN.md §15)
            if nprogress:
                yield ComputeProgressSpan(chunk, [areq.handle(ctx)],
                                          nprogress)
            yield from areq.wait(ctx)
            timer.stop(ctx)
            # measurement hygiene: re-synchronize ranks so NIC backlog
            # and phase skew cannot leak between timed iterations (an
            # idealized MPI_Barrier; see repro.sim.process.Barrier)
            yield barrier

    world.launch(factory)
    res = world.run()
    return OverlapResult(
        config=config,
        records=list(timer.records),
        fn_names=[fnset[r.fn_index].name for r in timer.records],
        winner=areq.winner_name,
        decided_at=areq.decided_at,
        makespan=res.makespan,
        events=res.events,
        engine_stats=world.sim.stats(),
    )


@dataclass
class ResilientOverlapResult(OverlapResult):
    """Outcome of a resilient run (restart loop + degradation handling)."""

    #: simulation restarts after aborted measurements
    restarts: int
    #: (exception name, quarantined function indices) per aborted run
    aborts: list[tuple[str, list[int]]]
    #: audit trail of every quarantine (index, reason)
    quarantine_log: list[tuple[int, str]]
    #: drift-triggered re-tunes
    retunes: int
    #: fault/transport counters summed over all simulation runs
    messages_dropped: int
    retransmits: int


def run_overlap_resilient(
    config: OverlapConfig,
    selector: Union[str, Selector, int] = "brute_force",
    evals_per_function: int = 5,
    filter_method: str = "cluster",
    history=None,
    resilience: Optional[Resilience] = None,
) -> ResilientOverlapResult:
    """Execute the micro-benchmark under the resilient-tuning policy.

    Like :func:`run_overlap`, but the simulation runs under the
    resilience policy's virtual-time watchdog, and an aborted
    measurement (deadlock, watchdog timeout, lost message) does not kill
    the benchmark: the implementations in flight are quarantined
    (sticky) and the simulation restarts — up to
    ``resilience.max_restarts`` times — with the surviving candidates.
    The :class:`~repro.adcl.request.ADCLRequest` carries its tuning
    state (measurements, quarantines, drift detector) across restarts,
    and its drift detector may re-open tuning mid-run.
    """
    if resilience is None:
        resilience = Resilience()
    fnset = function_set_for(config.operation)
    kind = OPERATION_KINDS.get(config.operation, "alltoall")
    if isinstance(selector, int):
        selector = FixedSelector(fnset, selector)
    chunk = config.compute_per_iteration / max(config.nprogress, 1)

    areq: Optional[ADCLRequest] = None
    records: list[TimerRecord] = []
    fn_names: list[str] = []
    restarts = 0
    aborts: list[tuple[str, list[int]]] = []
    makespan = 0.0
    events = 0
    dropped = 0
    retransmits = 0
    engine_stats: dict = {}

    def _merge_stats(world) -> None:
        for k, v in world.sim.stats().items():
            engine_stats[k] = engine_stats.get(k, 0) + v

    while len(records) < config.iterations:
        remaining = config.iterations - len(records)
        world = SimWorld(
            get_platform(config.platform),
            config.nprocs,
            noise=config.noise(),
            placement=config.placement,
            faults=config.faults,
            reliable=config.reliable,
            max_retries=config.max_retries,
        )
        spec = CollSpec(kind, world.comm_world, config.nbytes)
        if areq is None:
            areq = ADCLRequest(
                fnset,
                spec,
                selector=selector,
                evals_per_function=evals_per_function,
                filter_method=filter_method,
                history=history,
                resilience=resilience,
            )
        else:
            areq.spec = spec  # rebind to the fresh world's communicator
            areq.reset_runtime()
        timer = ADCLTimer(areq)

        def factory(ctx):
            for _ in range(remaining):
                timer.start(ctx)
                yield from areq.start(ctx)
                if config.nprogress:
                    yield ComputeProgressSpan(chunk, [areq.handle(ctx)],
                                              config.nprogress)
                yield from areq.wait(ctx)
                timer.stop(ctx)
                yield Barrier()

        world.launch(factory)
        try:
            res = world.run(deadline=resilience.deadline)
        except (WatchdogTimeout, DeadlockError, MessageLostError) as exc:
            restarts += 1
            culprits = sorted(areq.inflight_functions())
            for idx in culprits:
                areq.quarantine(
                    idx, f"measurement aborted: {type(exc).__name__}: {exc}"
                )
            aborts.append((type(exc).__name__, culprits))
            # completed iterations of the aborted run are still valid
            records.extend(timer.records)
            fn_names.extend(fnset[r.fn_index].name for r in timer.records)
            makespan += world.sim.now
            if world.faults is not None:
                dropped += world.faults.messages_dropped
            retransmits += world.retransmits
            _merge_stats(world)
            if restarts > resilience.max_restarts:
                raise
            continue
        records.extend(timer.records)
        fn_names.extend(fnset[r.fn_index].name for r in timer.records)
        makespan += res.makespan
        events += res.events
        if world.faults is not None:
            dropped += world.faults.messages_dropped
        retransmits += world.retransmits
        _merge_stats(world)

    return ResilientOverlapResult(
        config=config,
        records=records,
        fn_names=fn_names,
        winner=areq.winner_name,
        decided_at=areq.decided_at,
        makespan=makespan,
        events=events,
        engine_stats=engine_stats,
        restarts=restarts,
        aborts=aborts,
        quarantine_log=list(areq.quarantine_log),
        retunes=areq.retunes,
        messages_dropped=dropped,
        retransmits=retransmits,
    )
