"""The overlap micro-benchmark (§IV-A).

The benchmark executes a loop; each iteration

1. initiates the non-blocking collective,
2. executes a compute phase split into ``nprogress`` equal chunks with a
   progress call after each chunk,
3. calls the completion function.

The compute time per iteration is an input (the paper quotes the *total*
loop compute time, e.g. "50 s compute" over 1000 iterations);  ideally
the measured loop time equals the pure compute time — any excess is
communication that could not be overlapped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from ..adcl.fnsets import ibcast_function_set, ialltoall_extended_function_set, \
    ialltoall_function_set
from ..adcl.function import CollSpec, FunctionSet
from ..adcl.request import ADCLRequest
from ..adcl.selection.base import FixedSelector, Selector
from ..adcl.timer import ADCLTimer, TimerRecord
from ..errors import ReproError
from ..sim import Barrier, Compute, NoiseModel, Progress, SimWorld, get_platform

__all__ = ["OverlapConfig", "OverlapResult", "function_set_for", "run_overlap"]


def function_set_for(operation: str) -> FunctionSet:
    """The ADCL function-set used for one benchmark operation."""
    if operation == "alltoall":
        return ialltoall_function_set()
    if operation == "alltoall_ext":
        return ialltoall_extended_function_set()
    if operation == "bcast":
        return ibcast_function_set()
    raise ReproError(
        f"unknown benchmark operation {operation!r}; "
        f"expected 'alltoall', 'alltoall_ext' or 'bcast'"
    )


@dataclass(frozen=True)
class OverlapConfig:
    """One micro-benchmark scenario.

    ``compute_total`` and ``paper_iterations`` mirror the paper's
    reporting ("50 s compute over 1000 iterations"); the simulation runs
    ``iterations`` of them (fewer by default — the per-iteration shape
    is what matters) with ``compute_total / paper_iterations`` seconds
    of computation each.
    """

    platform: str = "whale"
    nprocs: int = 32
    operation: str = "alltoall"       # 'alltoall' | 'alltoall_ext' | 'bcast'
    nbytes: int = 128 * 1024          # per pair (alltoall) / total (bcast)
    compute_total: float = 50.0       # seconds over the whole paper loop
    paper_iterations: int = 1000
    iterations: int = 30              # iterations actually simulated
    nprogress: int = 5                # progress calls per iteration
    placement: str = "block"
    noise_sigma: float = 0.0
    noise_outlier_prob: float = 0.0
    seed: int = 0

    @property
    def compute_per_iteration(self) -> float:
        return self.compute_total / self.paper_iterations

    def noise(self) -> Optional[NoiseModel]:
        if self.noise_sigma == 0.0 and self.noise_outlier_prob == 0.0:
            return None
        return NoiseModel(sigma=self.noise_sigma,
                          outlier_prob=self.noise_outlier_prob,
                          seed=self.seed)

    def describe(self) -> str:
        return (
            f"{self.operation}@{self.platform} P={self.nprocs} "
            f"B={self.nbytes} compute={self.compute_total}s "
            f"progress={self.nprogress}"
        )


@dataclass
class OverlapResult:
    """Outcome of one micro-benchmark execution."""

    config: OverlapConfig
    #: per-iteration (max over ranks) loop times, in completion order
    records: list[TimerRecord]
    #: function name per records entry
    fn_names: list[str]
    winner: Optional[str]
    decided_at: Optional[int]
    makespan: float
    events: int

    @property
    def total_time(self) -> float:
        return sum(r.seconds for r in self.records)

    @property
    def mean_iteration(self) -> float:
        return self.total_time / len(self.records)

    def robust_mean_iteration(self, method: str = "cluster") -> float:
        """Outlier-filtered mean iteration time (what ADCL itself sees)."""
        from ..adcl.statistics import robust_mean

        return robust_mean([r.seconds for r in self.records], method=method)

    def mean_after_learning(self, robust: bool = False) -> float:
        """Mean iteration time once the decision has been made."""
        tail = [r.seconds for r in self.records if not r.learning]
        if not tail:
            return self.mean_iteration
        if robust:
            from ..adcl.statistics import robust_mean

            return robust_mean(tail)
        return sum(tail) / len(tail)

    def projected_total(self) -> float:
        """Extrapolate to the paper's full iteration count.

        Learning iterations are counted once; the remaining iterations
        are costed at the post-learning mean.
        """
        cfg = self.config
        learn = [r.seconds for r in self.records if r.learning]
        steady = self.mean_after_learning()
        remaining = max(cfg.paper_iterations - len(learn), 0)
        return sum(learn) + steady * remaining


def run_overlap(
    config: OverlapConfig,
    selector: Union[str, Selector, int] = "brute_force",
    evals_per_function: int = 5,
    filter_method: str = "cluster",
    history=None,
) -> OverlapResult:
    """Execute the micro-benchmark.

    ``selector`` is a selection-logic name, a :class:`Selector`
    instance, or an ``int`` — the latter runs a *verification run* with
    that single fixed implementation, circumventing the selection logic.
    """
    world = SimWorld(
        get_platform(config.platform),
        config.nprocs,
        noise=config.noise(),
        placement=config.placement,
    )
    fnset = function_set_for(config.operation)
    kind = "bcast" if config.operation == "bcast" else "alltoall"
    spec = CollSpec(kind, world.comm_world, config.nbytes)
    if isinstance(selector, int):
        selector = FixedSelector(fnset, selector)
    areq = ADCLRequest(
        fnset,
        spec,
        selector=selector,
        evals_per_function=evals_per_function,
        filter_method=filter_method,
        history=history,
    )
    timer = ADCLTimer(areq)
    chunk = config.compute_per_iteration / max(config.nprogress, 1)

    def factory(ctx):
        for _ in range(config.iterations):
            timer.start(ctx)
            yield from areq.start(ctx)
            for _ in range(config.nprogress):
                yield Compute(chunk)
                yield Progress([areq.handle(ctx)])
            yield from areq.wait(ctx)
            timer.stop(ctx)
            # measurement hygiene: re-synchronize ranks so NIC backlog
            # and phase skew cannot leak between timed iterations (an
            # idealized MPI_Barrier; see repro.sim.process.Barrier)
            yield Barrier()

    world.launch(factory)
    res = world.run()
    return OverlapResult(
        config=config,
        records=list(timer.records),
        fn_names=[fnset[r.fn_index].name for r in timer.records],
        winner=areq.winner_name,
        decided_at=areq.decided_at,
        makespan=res.makespan,
        events=res.events,
    )
