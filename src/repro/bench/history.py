"""Append-only perf-run history with trend regression detection.

Every perf-harness session appends one JSONL line to
``benchmarks/out/BENCH_history.jsonl`` (the benchmarks conftest hooks
this up; CI uploads the file so the trajectory accumulates across PRs).
``check_perf_regression.py`` reads the history back and compares the
latest run against the median of the recent window — a slow drift that
never trips the 3x single-run gate still surfaces as a trend warning.

The format is deliberately dumb: one self-contained JSON object per
line (``{"ts", "source", "sections"}``), written with an append +
flush, so a crashed harness loses at most its own line and a torn tail
line is skipped on load, never fatal.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "append_run",
    "detect_trends",
    "load_history",
    "render_history_report",
]

#: how many prior runs the trend baseline medians over
DEFAULT_WINDOW = 5


def append_run(path: str, source: str, sections: Dict[str, dict],
               timestamp: Optional[float] = None) -> dict:
    """Append one harness run to the history file; returns the entry.

    ``source`` names the harness (``perf`` / ``scale``), ``sections``
    is the harness's section map (e.g. the contents of
    ``BENCH_perf.json``).  Benchmarks are the wall-clock domain, so a
    real timestamp is fine here.
    """
    entry = {
        "ts": float(time.time() if timestamp is None else timestamp),
        "source": source,
        "sections": sections,
    }
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    line = json.dumps(entry, sort_keys=True, separators=(",", ":"))
    with open(path, "a", encoding="ascii") as fh:
        fh.write(line + "\n")
        fh.flush()
        os.fsync(fh.fileno())
    return entry


def load_history(path: str) -> List[dict]:
    """All well-formed entries, oldest first; torn lines are skipped."""
    entries: List[dict] = []
    if not os.path.exists(path):
        return entries
    with open(path, "r", encoding="ascii", errors="replace") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail from a crashed harness
            if isinstance(entry, dict) and "sections" in entry:
                entries.append(entry)
    return entries


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _series(entries: Iterable[dict], source: str, section: str,
            field: str) -> List[float]:
    out: List[float] = []
    for entry in entries:
        if entry.get("source") != source:
            continue
        value = entry.get("sections", {}).get(section, {}).get(field)
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            out.append(float(value))
    return out


def detect_trends(entries: List[dict],
                  metrics: Iterable[Tuple[str, str, str]], *,
                  window: int = DEFAULT_WINDOW,
                  factor: float = 3.0) -> List[dict]:
    """Compare each metric's latest run against its recent median.

    ``metrics`` lists ``(source, section, field)`` triples, all
    higher-is-better.  A metric regresses when the median of the prior
    ``window`` runs exceeds ``factor`` times the latest value.  Metrics
    with fewer than two recorded runs are skipped (history has to
    accumulate before trends mean anything).
    """
    findings: List[dict] = []
    for source, section, field in metrics:
        series = _series(entries, source, section, field)
        if len(series) < 2:
            continue
        latest = series[-1]
        baseline = _median(series[-window - 1:-1])
        ratio = (baseline / latest) if latest > 0 else float("inf")
        findings.append({
            "source": source, "section": section, "field": field,
            "latest": latest, "baseline_median": baseline,
            "ratio": ratio, "runs": len(series),
            "regressed": latest > 0 and ratio > factor
                         or (latest <= 0 < baseline),
        })
    return findings


def _numeric_fields(sections: Dict[str, dict]) -> List[Tuple[str, str]]:
    pairs: List[Tuple[str, str]] = []
    for section in sorted(sections):
        payload = sections[section]
        if not isinstance(payload, dict):
            continue
        for field in sorted(payload):
            value = payload[field]
            if isinstance(value, (int, float)) \
                    and not isinstance(value, bool):
                pairs.append((section, field))
    return pairs


def render_history_report(entries: List[dict], *,
                          window: int = DEFAULT_WINDOW) -> str:
    """The ``repro bench-report`` text: per-source trajectory summary."""
    if not entries:
        return ("bench history: empty (run the perf harnesses to start "
                "accumulating)")
    lines: List[str] = []
    sources = sorted({e.get("source", "?") for e in entries})
    lines.append(f"bench history: {len(entries)} run(s) across "
                 f"{len(sources)} source(s)")
    for source in sources:
        runs = [e for e in entries if e.get("source") == source]
        latest = runs[-1]
        stamp = time.strftime("%Y-%m-%d %H:%M:%S",
                              time.gmtime(latest.get("ts", 0)))
        lines.append(f"\n== {source} ({len(runs)} run(s), "
                     f"latest {stamp} UTC) ==")
        lines.append(f"  {'section.field':<44} {'latest':>12} "
                     f"{'median':>12} {'trend':>7}")
        for section, field in _numeric_fields(latest.get("sections", {})):
            series = _series(runs, source, section, field)
            if not series:
                continue
            cur = series[-1]
            base = _median(series[-window - 1:-1]) if len(series) > 1 \
                else cur
            if len(series) < 2:
                trend = "new"
            elif base == 0:
                trend = "n/a"
            else:
                delta = (cur - base) / abs(base) * 100.0
                trend = f"{delta:+.1f}%"
            lines.append(f"  {section + '.' + field:<44} {cur:>12.4g} "
                         f"{base:>12.4g} {trend:>7}")
    return "\n".join(lines)
