"""Parallel sweep executor: fan simulations out across cores.

A sweep (``python -m repro sweep``) or an FFT method comparison runs
many *independent* simulations — one per candidate implementation or
per method.  Each simulation is a self-contained deterministic world,
so the set parallelizes embarrassingly:

* :func:`run_tasks` — the generic executor: a list of ``(key,
  payload)`` tasks, a picklable module-level worker, the resilient
  master/worker fabric (:mod:`repro.bench.fabric`) for ``jobs > 1``,
  and an optional on-disk :class:`ResultCache`;
* :func:`sweep_implementations` / :func:`fft_methods` — the two
  concrete sweeps behind the ``sweep`` and ``fft`` CLI commands;
* :func:`derive_seed` — deterministic per-task seed derivation, so a
  task's noise stream depends only on its identity (never on sweep
  order, worker count, or which other tasks run alongside it).

Determinism contract: for the same task list, serial execution
(``jobs=1``), fabric execution (``jobs=N``), a chaos-interrupted
fabric run, a ``--resume`` continuation, and a cache replay all return
bit-identical summaries.  Workers reduce each simulation to a
JSON-able dict whose float fields carry ``float.hex()`` twins
(``*_hex`` keys), so the contract survives a JSON round-trip through
the cache exactly.

Robustness: the fabric survives worker SIGKILLs, hangs and OOM kills
(leases + heartbeats + respawn); on *fabric* failure — respawn budget
exhausted, fork unavailable — ``run_tasks`` degrades gracefully to the
serial executor and still finishes the sweep.  Every completed task is
checkpointed to the cache immediately, so a killed sweep (master
included) continues from the last completed task.

The cache reuses :func:`repro.adcl.history.atomic_write_json`: one
file per task, named by the SHA-256 of the task key, written
crash-safely behind an ``O_EXCL`` lock file so concurrent sweeps
sharing a cache directory never tear or duplicate each other's
entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from typing import Any, Callable, Optional, Sequence

from ..adcl.history import atomic_write_json
from ..util.canonical import canonical_json
from ..util.locks import FileLock
from .overlap import OverlapConfig, function_set_for, run_overlap

__all__ = [
    "ResultCache",
    "derive_seed",
    "fft_methods",
    "run_tasks",
    "sweep_implementations",
    "task_key",
]


# ---------------------------------------------------------------------------
# task identity & seed derivation
# ---------------------------------------------------------------------------


def task_key(kind: str, **fields: Any) -> str:
    """Canonical string identity of one task.

    ``fields`` must be JSON-able; dataclasses are flattened with
    :func:`dataclasses.asdict`.  The key is stable across processes and
    sessions (sorted keys, no whitespace), making it usable both as the
    cache key and as the seed-derivation input.
    """
    flat = {}
    for name, value in fields.items():
        if dataclasses.is_dataclass(value) and not isinstance(value, type):
            value = dataclasses.asdict(value)
        flat[name] = value
    return f"{kind}:{canonical_json(flat)}"


def derive_seed(base_seed: int, key: str) -> int:
    """Deterministic per-task seed: hash the base seed with the task key.

    Python's builtin ``hash()`` is salted per process, so we use
    SHA-256 — the derived seed is identical in every worker process and
    every session.  The result is a non-negative 31-bit int (safe for
    ``numpy`` generators).
    """
    digest = hashlib.sha256(f"{base_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:4], "big") & 0x7FFFFFFF


# ---------------------------------------------------------------------------
# on-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Keyed on-disk cache of task summaries.

    One JSON file per task under ``directory``, named by the SHA-256 of
    the key and written with ``atomic_write_json`` (unique temp file +
    fsync + atomic rename), so a reader never sees a torn entry.  Each
    file stores ``{"key": ..., "result": ...}``; the stored key is
    verified on read so a (vanishingly unlikely) digest collision
    degrades to a miss, never a wrong answer.

    Concurrent writers — two sweeps sharing ``--result-cache`` — are
    serialized per key by a :class:`~repro.util.locks.FileLock`.  A
    writer that loses the race simply skips its write (``lock_skips``):
    results are a pure function of the key, so first-writer-wins loses
    nothing.  A lock whose holder pid is dead — or, when no pid is
    readable, one older than ``STALE_LOCK_S`` — belonged to a crashed
    writer and is broken.
    """

    #: a lock file older than this is a crashed writer's leftovers
    STALE_LOCK_S = FileLock.STALE_S

    def __init__(self, directory: str):
        self.directory = directory
        os.makedirs(directory, exist_ok=True)
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.lock_skips = 0

    def path_for(self, key: str) -> str:
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()
        return os.path.join(self.directory, f"{digest[:40]}.json")

    def get(self, key: str) -> Optional[Any]:
        """The cached result for ``key``, or None on a miss."""
        try:
            with open(self.path_for(key), encoding="utf-8") as fh:
                entry = json.load(fh)
        except (OSError, ValueError):
            self.misses += 1
            return None
        if entry.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return entry.get("result")

    def put(self, key: str, result: Any) -> None:
        path = self.path_for(key)
        lock = FileLock(path, stale_s=self.STALE_LOCK_S)
        if not lock.try_acquire():
            # another sweep is writing this key right now; its result
            # is bit-identical by the determinism contract, so losing
            # the race is free
            self.lock_skips += 1
            return
        try:
            atomic_write_json(path, {"key": key, "result": result})
            self.stores += 1
        finally:
            lock.release()

    def __len__(self) -> int:
        return sum(1 for name in os.listdir(self.directory)
                   if name.endswith(".json"))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        return {
            "directory": self.directory,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "lock_skips": self.lock_skips,
            "entries": len(self),
            "hit_rate": round(self.hit_rate, 4),
        }


# ---------------------------------------------------------------------------
# the executor
# ---------------------------------------------------------------------------


def run_tasks(
    tasks: Sequence[tuple[str, Any]],
    worker: Callable[[Any], Any],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    fabric: Optional["FabricConfig"] = None,
) -> list:
    """Run ``worker(payload)`` for every ``(key, payload)`` task.

    Results come back in task order.  Cached tasks are served from
    ``cache`` without running (this is also the ``--resume`` path: the
    cache *is* the sweep checkpoint); computed results are written
    back to it as each task completes.

    With ``jobs > 1`` the non-cached tasks run on the resilient
    master/worker fabric (:mod:`repro.bench.fabric`) — long-lived
    forked workers, leases, heartbeats, respawn, work stealing.
    ``worker`` must be a module-level callable and payloads picklable.
    Results commit keyed by task identity, so fabric execution is
    observationally identical to serial execution.  ``fabric``
    optionally supplies a tuned :class:`~repro.bench.fabric.
    FabricConfig` (its metrics registry collects the run's telemetry).

    Graceful degradation: if the fabric cannot keep workers alive
    (respawn budget exhausted, ``fork`` unavailable), the remaining
    tasks finish on the in-process serial executor — a sweep never
    dies of fabric trouble.
    """
    from .fabric.master import FabricConfig, FabricError, run_tasks_fabric

    results: list = [None] * len(tasks)
    todo: list[int] = []
    for i, (key, _payload) in enumerate(tasks):
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                results[i] = hit
                continue
        todo.append(i)

    if fabric is not None:
        fabric.metrics.counter("fabric.resume.hits").inc(
            len(tasks) - len(todo))
        fabric.metrics.counter("fabric.tasks.total").inc(len(tasks))

    if not todo:
        return results

    sub = [tasks[i] for i in todo]
    done: dict[int, Any] = {}
    if jobs > 1 and len(sub) > 1:
        config = fabric if fabric is not None else FabricConfig()
        try:
            computed = run_tasks_fabric(sub, worker, jobs, cache=cache,
                                        config=config)
            for j, result in enumerate(computed):
                done[j] = result
        except FabricError as exc:
            # the fabric is gone; keep its partial results (already
            # checkpointed) and finish the rest serially
            config.metrics.counter("fabric.fallback.serial").inc()
            done.update(exc.partial)
    for j in range(len(sub)):
        if j in done:
            results[todo[j]] = done[j]
            continue
        result = worker(sub[j][1])
        results[todo[j]] = result
        done[j] = result
        if cache is not None:
            cache.put(sub[j][0], result)
    if fabric is not None and cache is not None:
        # fold the cache's cumulative counters into the fabric registry
        # as gauges so --fabric-metrics and the telemetry endpoint see
        # hit rates and lock contention (lock_skips) per run
        for field in ("hits", "misses", "stores", "lock_skips"):
            fabric.metrics.gauge(f"fabric.cache.{field}").set(
                getattr(cache, field))
    return results


# ---------------------------------------------------------------------------
# concrete sweeps (workers are module-level so they pickle)
# ---------------------------------------------------------------------------


def _records_summary(res) -> dict:
    """JSON-able, bit-exact summary shared by both sweep kinds."""
    return {
        "mean_iteration": res.mean_iteration,
        "mean_iteration_hex": float(res.mean_iteration).hex(),
        "makespan": res.makespan,
        "makespan_hex": float(res.makespan).hex(),
        "events": getattr(res, "events", 0),
        "winner": res.winner,
        "decided_at": res.decided_at,
        "record_hex": [float(r.seconds).hex() for r in res.records],
        "engine_stats": getattr(res, "engine_stats", None),
    }


def _sweep_worker(payload) -> dict:
    config, fn_index, fn_name, trace = payload
    if not trace:
        res = run_overlap(config, selector=fn_index)
        out = _records_summary(res)
    else:
        # per-task recorder: each task records its own world(s) and the
        # parent merges them in task order, so serial, parallel and
        # cache-replay sweeps all assemble byte-identical trace docs.
        # install()/uninstall semantics matter for jobs=1 (in-process):
        # the previous recorder must come back whatever happens.
        from ..obs.recorder import TraceRecorder, install

        rec = TraceRecorder()
        prev = install(rec)
        try:
            res = run_overlap(config, selector=fn_index)
        finally:
            install(prev)
        out = _records_summary(res)
        out["trace"] = rec.export_events()
        out["worlds"] = list(rec.worlds)
        out["metrics"] = rec.metrics.snapshot()
    out["fn_index"] = fn_index
    out["name"] = fn_name
    out["seed"] = config.seed
    return out


def sweep_implementations(
    config: OverlapConfig,
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    derive_seeds: bool = True,
    trace: bool = False,
    fabric: Optional["FabricConfig"] = None,
) -> list[dict]:
    """Time every implementation of ``config.operation`` (the ``sweep``
    command), optionally in parallel and/or against a result cache.

    With ``derive_seeds`` (the default) each implementation runs under
    :func:`derive_seed`'s per-task seed, so its noise stream is a pure
    function of the scenario + implementation identity.

    With ``trace`` each task additionally records a structured event
    trace and a metrics snapshot (``trace`` / ``worlds`` / ``metrics``
    result keys).  Traced tasks use a distinct cache namespace so plain
    sweep entries are never served trace-less to a traced sweep.
    """
    fnset = function_set_for(config.operation)
    tasks = []
    for i, fn in enumerate(fnset):
        # seeds always derive from the plain sweep key: recording a
        # trace must not perturb the simulated noise stream
        key = task_key("sweep", config=config, fn_index=i, fn_name=fn.name)
        cfg = config
        if derive_seeds:
            cfg = dataclasses.replace(config, seed=derive_seed(config.seed, key))
        cache_key = (
            task_key("sweep+trace", config=config, fn_index=i, fn_name=fn.name)
            if trace else key
        )
        tasks.append((cache_key, (cfg, i, fn.name, trace)))
    return run_tasks(tasks, _sweep_worker, jobs=jobs, cache=cache,
                     fabric=fabric)


def _fft_worker(payload) -> dict:
    config, method = payload
    # local import: keep bench importable without the apps package and
    # avoid a bench <-> apps import cycle at module load
    from ..apps.fft import run_fft

    res = run_fft(config)
    out = _records_summary(res)
    out["method"] = method
    tail = [r.seconds for r in res.records if not r.learning]
    steady = sum(tail) / len(tail) if tail else res.mean_iteration
    out["mean_after_learning"] = steady
    out["mean_after_learning_hex"] = float(steady).hex()
    return out


def fft_methods(
    config,
    methods: Sequence[str],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    fabric: Optional["FabricConfig"] = None,
) -> list[dict]:
    """Run the FFT kernel once per method (the ``fft`` command)."""
    tasks = []
    for method in methods:
        cfg = dataclasses.replace(config, method=method)
        key = task_key("fft", config=cfg)
        tasks.append((key, (cfg, method)))
    return run_tasks(tasks, _fft_worker, jobs=jobs, cache=cache,
                     fabric=fabric)
