"""Wire protocol between the fabric master and its workers.

Frames are length-prefixed messages: a 4-byte big-endian payload
length followed by the encoded message.  Two codecs share the framing:

* ``pickle`` (the default) — the fabric's private channel.  Task
  payloads are arbitrary picklable Python objects (dataclass configs);
  the channel is a same-machine socketpair between a parent and its
  forked child, never a network endpoint.
* ``json`` — the tuning daemon's channel (:mod:`repro.serve`).  A
  unix/TCP socket is a real endpoint that untrusted bytes can reach,
  so the service never unpickles: messages are canonical JSON (sorted
  keys, no whitespace), decoded with the top-level array coerced back
  to the tuple convention.

Messages are plain tuples whose first element is the type:

========== ================================================= =========
type       remaining fields                                  direction
========== ================================================= =========
``hello``  worker_id, pid                                    w -> m
``hb``     worker_id, seq                                    w -> m
``result`` task_index, key, fingerprint, result              w -> m
``error``  task_index, key, traceback_text                   w -> m
``task``   task_index, key, payload[, correlation]           m -> w
``shutdown`` (none)                                          m -> w
========== ================================================= =========

``task`` frames grow a fifth element when the sweep carries a
cross-process trace correlation id; workers unpack the tail with
``*rest``, so a master and worker from adjacent versions interoperate.

``result`` frames carry a :func:`result_fingerprint` so the master can
verify that a duplicate execution (a stolen or re-leased task) returned
the bit-identical answer the first execution did — the fabric's
determinism contract, checked on every dedupe, not assumed.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from typing import Any, Iterator, List, Optional, Tuple

from ...util.canonical import canonical_bytes, fingerprint

__all__ = [
    "FrameReader",
    "ProtocolError",
    "recv_frame",
    "result_fingerprint",
    "send_frame",
]

#: 4-byte big-endian unsigned length prefix
_HEADER = struct.Struct(">I")

#: sanity cap on a single frame (a traced sweep task can be tens of MB;
#: anything past this is a corrupt length prefix, not a real frame)
MAX_FRAME = 1 << 30


class ProtocolError(RuntimeError):
    """A malformed frame (bad length prefix, undecodable body)."""


def _encode(message: tuple, codec: str) -> bytes:
    if codec == "pickle":
        return pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    if codec == "json":
        # strict: a non-JSON-able value in a service frame is a
        # programming error, not something to stringify over the wire
        return canonical_bytes(message, strict=True)
    raise ValueError(f"unknown frame codec {codec!r}")


def _decode(body: bytes, codec: str) -> tuple:
    if codec == "pickle":
        try:
            return pickle.loads(body)
        except Exception as exc:
            raise ProtocolError(f"unpicklable frame: {exc}") from exc
    if codec == "json":
        try:
            message = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(f"undecodable JSON frame: {exc}") from exc
        if not isinstance(message, list):
            raise ProtocolError(
                f"JSON frame is not an array: {type(message).__name__}")
        return tuple(message)
    raise ValueError(f"unknown frame codec {codec!r}")


def result_fingerprint(result: Any) -> str:
    """SHA-256 of the canonical JSON form of a task result.

    Task results are JSON-able dicts (the PR-3 contract: float fields
    carry ``float.hex()`` twins), so canonical JSON — sorted keys, no
    whitespace — is a stable bit-exact identity usable across
    processes, sessions, and the serial/fabric/resume comparison the
    chaos harness performs.
    """
    return fingerprint(result)


def send_frame(sock: socket.socket, message: tuple,
               codec: str = "pickle") -> None:
    """Serialize and send one message (blocking, whole frame)."""
    body = _encode(message, codec)
    sock.sendall(_HEADER.pack(len(body)) + body)


def _recv_exact(sock: socket.socket, n: int) -> Optional[bytes]:
    """Read exactly ``n`` bytes; None on clean EOF at a frame boundary.

    A ``socket.timeout`` with zero bytes read propagates (the caller's
    idle tick); mid-frame timeouts keep reading — once a peer started a
    frame it is actively writing it, so a mid-frame wait is bounded.
    """
    chunks: List[bytes] = []
    got = 0
    while got < n:
        try:
            chunk = sock.recv(n - got)
        except socket.timeout:
            if not chunks:
                raise
            continue
        if not chunk:
            if chunks:
                raise ProtocolError("EOF inside a frame")
            return None
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket, codec: str = "pickle",
               max_frame: int = MAX_FRAME) -> Optional[tuple]:
    """Blocking receive of one frame; None on clean EOF.

    Raises ``socket.timeout`` if the socket has a timeout and no frame
    has started, and :class:`ProtocolError` on a torn, oversized or
    undecodable frame.  ``max_frame`` lets an endpoint enforce a cap
    tighter than the fabric-wide :data:`MAX_FRAME` (the tuning daemon
    rejects megabyte frames that a sweep task would legitimately send).
    """
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise ProtocolError(f"frame length {length} exceeds cap {max_frame}")
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("EOF between header and body")
    return _decode(body, codec)


class FrameReader:
    """Incremental frame parser for the master's non-blocking sockets.

    ``feed()`` raw bytes as they arrive; ``frames()`` yields every
    complete message, leaving partial frames buffered for the next
    feed.  One reader per worker connection.
    """

    def __init__(self, codec: str = "pickle", max_frame: int = MAX_FRAME):
        self._buf = bytearray()
        self._codec = codec
        self._max_frame = max_frame

    def feed(self, data: bytes) -> None:
        self._buf.extend(data)

    def frames(self) -> Iterator[tuple]:
        while True:
            if len(self._buf) < _HEADER.size:
                return
            (length,) = _HEADER.unpack(self._buf[:_HEADER.size])
            if length > self._max_frame:
                raise ProtocolError(
                    f"frame length {length} exceeds cap {self._max_frame}")
            end = _HEADER.size + length
            if len(self._buf) < end:
                return
            body = bytes(self._buf[_HEADER.size:end])
            del self._buf[:end]
            yield _decode(body, self._codec)

    def pending_bytes(self) -> int:
        return len(self._buf)


def drain_socket(sock: socket.socket, reader: FrameReader,
                 chunk: int = 65536) -> Tuple[bool, List[tuple]]:
    """Read whatever is available into ``reader``.

    Returns ``(alive, frames)`` — ``alive`` is False once the peer
    closed (EOF) or the connection errored; ``frames`` is every
    complete message the read produced.  Non-blocking: returns
    immediately when the socket would block.
    """
    alive = True
    while True:
        try:
            data = sock.recv(chunk)
        except (BlockingIOError, InterruptedError):
            break
        except OSError:
            alive = False
            break
        if not data:
            alive = False
            break
        reader.feed(data)
        if len(data) < chunk:
            break
    return alive, list(reader.frames())
