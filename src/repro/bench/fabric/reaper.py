"""Orphan-worker cleanup: never leak children, however the sweep dies.

The PR-3 fork pool could leak live children when the parent took a
``KeyboardInterrupt`` (or any exception) at the wrong moment — the
pool's context manager never ran, the workers kept spinning.  The
fabric closes that hole with three layers:

1. every spawned worker process is registered here; an ``atexit`` hook
   terminates-then-kills anything still alive at interpreter exit
   (covers exceptions, ``KeyboardInterrupt``, normal exit);
2. a chained SIGTERM handler reaps children before re-delivering the
   signal (covers ``kill <master>``);
3. the workers themselves poll ``os.getppid()`` and exit when the
   master vanishes (covers SIGKILL of the master, which no handler can
   see) — see :mod:`repro.bench.fabric.worker`.

Registration is idempotent and cheap; ``unregister`` after a clean
join keeps the registry small.
"""

from __future__ import annotations

import atexit
import os
import signal
import threading
from typing import Dict

__all__ = ["install", "register", "unregister", "reap_all", "alive_pids"]

_lock = threading.Lock()
_children: Dict[int, object] = {}  # pid -> multiprocessing.Process
_installed = False
_prev_sigterm = None


def register(proc) -> None:
    """Track a spawned worker process (must have .pid/.is_alive/...)."""
    install()
    with _lock:
        if proc.pid is not None:
            _children[proc.pid] = proc


def unregister(proc) -> None:
    with _lock:
        _children.pop(proc.pid, None)


def alive_pids() -> list:
    with _lock:
        return [pid for pid, p in _children.items() if p.is_alive()]


def reap_all(grace: float = 0.5) -> int:
    """Terminate (then kill) every registered live child.  Returns the
    number of children that needed reaping."""
    with _lock:
        procs = list(_children.values())
        _children.clear()
    reaped = 0
    for proc in procs:
        try:
            if not proc.is_alive():
                continue
            reaped += 1
            proc.terminate()
        except Exception:
            pass
    for proc in procs:
        try:
            proc.join(grace)
            if proc.is_alive():
                proc.kill()
                proc.join(grace)
        except Exception:
            pass
    return reaped


def _on_sigterm(signum, frame):
    reap_all()
    # restore whoever was there before us and re-deliver, so the
    # process still dies with the conventional SIGTERM disposition
    prev = _prev_sigterm
    if callable(prev):
        prev(signum, frame)
        return
    signal.signal(signal.SIGTERM, signal.SIG_DFL)
    os.kill(os.getpid(), signal.SIGTERM)


def install() -> None:
    """Idempotently install the atexit hook and SIGTERM chain.

    Signal installation only works from the main thread; elsewhere the
    atexit + ppid-poll layers still cover cleanup.
    """
    global _installed, _prev_sigterm
    if _installed:
        return
    _installed = True
    atexit.register(reap_all)
    try:
        _prev_sigterm = signal.signal(signal.SIGTERM, _on_sigterm)
    except ValueError:  # not the main thread
        _prev_sigterm = None
