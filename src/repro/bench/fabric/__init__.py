"""Resilient master/worker sweep fabric.

The PR-3 executor forked a fresh pool per sweep and died wholesale if
one worker was SIGKILLed, hung, or OOM-killed.  This package replaces
it with a persistent master/worker fabric (modeled on nengo-mpi's
master + spawned-worker design):

* :mod:`repro.bench.fabric.protocol` — length-prefixed frames over a
  socketpair: ``task`` / ``result`` / ``heartbeat`` / ``shutdown``;
* :mod:`repro.bench.fabric.leases` — the pure lease state machine:
  per-task leases with deadlines, reassignment on worker death or
  expiry, work-stealing for stragglers, poison-task quarantine;
* :mod:`repro.bench.fabric.worker` — the long-lived worker loop
  (heartbeat thread + orphan self-termination);
* :mod:`repro.bench.fabric.master` — the event-loop master: spawns and
  respawns workers (exponential backoff), dispatches leases, collects
  streamed results, checkpoints each to the on-disk ResultCache, and
  degrades to raising :class:`FabricError` with partial results so the
  caller can finish serially;
* :mod:`repro.bench.fabric.reaper` — process-wide orphan-worker
  cleanup (``atexit`` + SIGTERM), so an interrupted sweep never leaks
  children.

Determinism contract (inherited from PR-3): per-task seeds derive from
task identity alone, results are committed first-write-wins keyed by
task index, and duplicate executions (steals, retries) must produce
bit-identical fingerprints — so serial, fabric, chaos-interrupted and
resumed runs all return byte-equal summaries.
"""

from .leases import LeaseTable, TaskState
from .master import FabricConfig, FabricError, run_tasks_fabric
from .protocol import result_fingerprint

__all__ = [
    "FabricConfig",
    "FabricError",
    "LeaseTable",
    "TaskState",
    "result_fingerprint",
    "run_tasks_fabric",
]
