"""The long-lived worker process: run tasks, stream results, heartbeat.

One worker = one forked process holding its end of a socketpair.  The
main loop blocks on ``task`` frames and answers each with a ``result``
frame carrying the task's :func:`~repro.bench.fabric.protocol.
result_fingerprint`; a daemon thread emits ``hb`` frames every
``heartbeat_interval`` seconds so the master can distinguish *busy*
from *dead* without killing long tasks.

Self-termination: both the loop and the heartbeat thread poll
``os.getppid()`` — if the master vanishes (even by SIGKILL, which runs
no cleanup on the master side) the worker exits instead of orphaning
itself.  ``REPRO_FABRIC_WORKER=1`` is exported inside the worker so
task code (and chaos tests) can tell worker execution from the
master's inline fallback execution.

A task that raises is answered with an ``error`` frame (the exception
is deterministic — it would fail the serial executor too, so the
master propagates it rather than retrying); a task that *kills* the
worker (segfault, OOM, chaos SIGKILL) is the master's problem: the
heartbeat stops, the lease is torn down, the task is requeued or
quarantined.
"""

from __future__ import annotations

import os
import socket
import threading
import traceback
from typing import Any, Callable

from .protocol import ProtocolError, recv_frame, send_frame

__all__ = ["worker_main"]

#: seconds the blocking recv waits before re-checking the parent pid
_RECV_TICK = 0.25


def worker_main(worker_id: int, sock: socket.socket,
                worker_fn: Callable[[Any], Any],
                heartbeat_interval: float, parent_pid: int) -> None:
    """Entry point of the forked worker process (never returns to the
    caller's code; exits the loop on shutdown/EOF/orphaning)."""
    os.environ["REPRO_FABRIC_WORKER"] = "1"
    send_lock = threading.Lock()
    stop = threading.Event()

    def _send(message: tuple) -> bool:
        with send_lock:
            try:
                send_frame(sock, message)
                return True
            except OSError:
                stop.set()
                return False

    def _orphaned() -> bool:
        return os.getppid() != parent_pid

    def _heartbeat() -> None:
        seq = 0
        while not stop.wait(heartbeat_interval):
            if _orphaned():
                # the master is gone; the main thread may be deep in a
                # task and there is nobody left to send the result to.
                # A flag is not enough — hard-exit the whole process.
                os._exit(2)
            seq += 1
            if not _send(("hb", worker_id, seq)):
                break

    _send(("hello", worker_id, os.getpid()))
    thread = threading.Thread(target=_heartbeat, name="fabric-hb",
                              daemon=True)
    thread.start()

    sock.settimeout(_RECV_TICK)
    try:
        while not stop.is_set():
            if _orphaned():
                break
            try:
                frame = recv_frame(sock)
            except socket.timeout:
                continue
            except (OSError, ProtocolError):
                break
            if frame is None or frame[0] == "shutdown":
                break
            if frame[0] != "task":
                continue  # unknown frame: ignore, stay alive
            # task frames are 4-tuples, or 5-tuples when the master
            # propagates a cross-process trace correlation id
            _, index, key, payload, *rest = frame
            if rest and rest[0]:
                os.environ["REPRO_CORR_ID"] = str(rest[0])
            try:
                result = worker_fn(payload)
            except BaseException:
                if not _send(("error", index, key,
                              traceback.format_exc())):
                    break
                continue
            from .protocol import result_fingerprint
            if not _send(("result", index, key,
                          result_fingerprint(result), result)):
                break
    finally:
        stop.set()
        try:
            sock.close()
        except OSError:
            pass
