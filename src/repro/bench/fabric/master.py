"""The fabric master: leases out tasks, survives its workers.

``run_tasks_fabric`` is the execution engine behind ``repro sweep
--jobs N``: it forks ``jobs`` long-lived workers connected by
socketpairs, streams ``task`` frames out and ``(task, fingerprint,
result)`` frames back, and keeps the sweep alive through everything
the PR-3 pool died of:

* **leases** — every dispatched task carries a deadline
  (``task_timeout``); an expired lease requeues the task for another
  worker while the original execution, if it ever finishes, is deduped
  by fingerprint;
* **heartbeats** — a worker that stops beating for
  ``heartbeat_timeout`` seconds (or whose process exits) is declared
  dead: its leases are torn down and it is respawned with exponential
  backoff;
* **poison-task quarantine** — a task that was held by
  ``poison_worker_kills`` dying workers is quarantined: a
  machine-readable defect is recorded through the PR-4 audit-log
  schema and the task runs *inline* in the master (the last-resort
  executor), so one pathological task cannot sink the sweep;
* **work stealing** — an idle worker duplicates the oldest
  outstanding lease, so a straggler cannot serialize the tail;
* **checkpointing** — every committed result is written to the
  on-disk :class:`~repro.bench.parallel.ResultCache` immediately, so a
  killed sweep (workers *or* master) resumes from the last completed
  task via ``--resume``;
* **graceful degradation** — when the respawn budget is exhausted (or
  workers cannot be spawned at all) the master raises
  :class:`FabricError` carrying the partial results; the caller
  (``run_tasks``) finishes the remainder on the serial executor.

Determinism: task seeds derive from task identity (never from worker
count or scheduling), results commit first-write-wins per task, and a
duplicate result whose fingerprint disagrees with the committed one is
recorded as a determinism defect — so serial == fabric == resumed runs
bit-exactly, which the chaos harness enforces by SIGKILLing workers
mid-sweep (``chaos_kills``) and comparing fingerprints.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
import random
import selectors
import signal
import socket
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ...obs.audit import AuditLog
from ...obs.metrics import MetricsRegistry
from . import reaper
from .leases import LeaseTable
from .protocol import FrameReader, drain_socket, result_fingerprint, send_frame
from .worker import worker_main

__all__ = [
    "FabricConfig",
    "FabricError",
    "FabricTaskError",
    "FabricMaster",
    "fork_available",
    "run_tasks_fabric",
]


class FabricError(RuntimeError):
    """The fabric itself failed (spawn failure, respawn budget
    exhausted).  Carries the results committed so far so the caller
    can degrade to the serial executor for the remainder."""

    def __init__(self, message: str, partial: Optional[Dict[int, Any]] = None):
        super().__init__(message)
        self.partial: Dict[int, Any] = partial or {}


class FabricTaskError(RuntimeError):
    """A task raised inside a worker.  Deterministic — the serial
    executor would raise too — so this propagates instead of
    triggering the serial fallback."""

    def __init__(self, key: str, traceback_text: str):
        super().__init__(
            f"task {key!r} raised in a fabric worker:\n{traceback_text}")
        self.key = key
        self.traceback_text = traceback_text


@dataclasses.dataclass
class FabricConfig:
    """Tuning knobs + telemetry sinks for one fabric run.

    The ``metrics`` registry (a PR-4 :class:`MetricsRegistry`) outlives
    the run: the CLI reads it for the ``--stats`` footer and dumps it
    for the chaos-smoke CI artifact.  ``audit`` collects quarantine
    defects in the PR-4 audit-log schema; with ``defects_path`` set
    they are also persisted as JSON.
    """

    task_timeout: float = 60.0
    heartbeat_interval: float = 0.1
    heartbeat_timeout: float = 3.0
    poison_worker_kills: int = 2
    max_clones: int = 2
    #: a worker still holding a task this many lease lifetimes after
    #: issue is presumed wedged (heartbeat thread alive, main thread
    #: stuck) and recycled.  Deliberately generous: a slow-but-live
    #: worker keeps heartbeating and must be allowed to finish — its
    #: expired lease is merely re-issued elsewhere and deduped.
    hung_grace_factor: float = 4.0
    #: leases younger than this are never stolen (avoids duplicating
    #: fast tasks at the sweep tail just because a worker went idle)
    steal_min_age: float = 0.25
    respawn_backoff: float = 0.05
    max_respawns: int = 8
    #: chaos harness: SIGKILL a random live worker after this many
    #: task completions (0 = off); which worker dies is drawn from a
    #: dedicated seeded RNG so chaos runs are reproducible
    chaos_kills: int = 0
    chaos_seed: int = 0
    defects_path: Optional[str] = None
    #: cross-process trace correlation id; when set, task frames carry
    #: it and workers export it into ``REPRO_CORR_ID`` so every
    #: per-task trace joins the sweep's merged timeline
    correlation: str = ""
    #: optional ``unix:``/``tcp:`` endpoint; when set, the master serves
    #: a read-only text exposition of ``metrics`` for the whole run
    telemetry_endpoint: Optional[str] = None
    metrics: MetricsRegistry = dataclasses.field(
        default_factory=MetricsRegistry)
    audit: AuditLog = dataclasses.field(default_factory=AuditLog)

    def stats(self) -> dict:
        """Plain-dict counter snapshot for footers and artifacts."""
        snap = self.metrics.snapshot()
        return {name: m["value"] for name, m in snap.items()
                if m["type"] == "counter"}


def fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


class _Worker:
    """Master-side handle of one live worker process."""

    __slots__ = ("id", "proc", "sock", "reader", "last_hb", "pid",
                 "current", "hung_since")

    def __init__(self, wid: int, proc, sock: socket.socket, now: float):
        self.id = wid
        self.proc = proc
        self.sock = sock
        self.reader = FrameReader()
        self.last_hb = now
        self.pid = proc.pid
        self.current: Optional[int] = None  # leased task index
        self.hung_since: Optional[float] = None


class FabricMaster:
    """One sweep's master event loop.  Not reusable across runs."""

    def __init__(self, worker_fn: Callable[[Any], Any], jobs: int,
                 config: Optional[FabricConfig] = None):
        self.worker_fn = worker_fn
        self.jobs = max(1, int(jobs))
        self.config = config or FabricConfig()
        self.metrics = self.config.metrics
        self.audit = self.config.audit
        self._sel = selectors.DefaultSelector()
        self._workers: Dict[int, _Worker] = {}
        self._next_wid = 0
        self._respawns = 0
        self._respawn_due: List[float] = []  # monotonic deadlines
        self._fingerprints: Dict[int, str] = {}
        self._completed = 0
        self._chaos_rng = random.Random(self.config.chaos_seed)
        self._chaos_left = self.config.chaos_kills

    # -- spawning -----------------------------------------------------------

    def _spawn_worker(self, now: float) -> _Worker:
        ctx = multiprocessing.get_context("fork")
        parent_sock, child_sock = socket.socketpair()
        wid = self._next_wid
        self._next_wid += 1
        proc = ctx.Process(
            target=worker_main,
            args=(wid, child_sock, self.worker_fn,
                  self.config.heartbeat_interval, os.getpid()),
            name=f"fabric-worker-{wid}",
            daemon=True,
        )
        proc.start()
        child_sock.close()
        parent_sock.setblocking(False)
        worker = _Worker(wid, proc, parent_sock, now)
        self._workers[wid] = worker
        self._sel.register(parent_sock, selectors.EVENT_READ, worker)
        reaper.register(proc)
        self.metrics.counter("fabric.workers.spawned").inc()
        return worker

    def _retire_worker(self, worker: _Worker, kill: bool = True) -> None:
        self._workers.pop(worker.id, None)
        try:
            self._sel.unregister(worker.sock)
        except (KeyError, ValueError):
            pass
        try:
            worker.sock.close()
        except OSError:
            pass
        if kill:
            try:
                if worker.proc.is_alive():
                    worker.proc.kill()
            except Exception:
                pass
        try:
            worker.proc.join(0.2)
        except Exception:
            pass
        reaper.unregister(worker.proc)

    # -- the run ------------------------------------------------------------

    def run(self, tasks: Sequence[Tuple[str, Any]],
            cache=None) -> List[Any]:
        """Execute every ``(key, payload)`` task; results in task order.

        Raises :class:`FabricError` (with partial results) on fabric
        failure and :class:`FabricTaskError` on a deterministic task
        exception.
        """
        cfg = self.config
        table = LeaseTable(
            len(tasks), task_timeout=cfg.task_timeout,
            poison_worker_kills=cfg.poison_worker_kills,
            max_clones=cfg.max_clones,
            steal_min_age=cfg.steal_min_age,
        )
        self._table = table
        self._tasks = tasks
        self._cache = cache
        if not tasks:
            return []
        try:
            now = time.monotonic()
            want = min(self.jobs, len(tasks))
            for _ in range(want):
                self._spawn_worker(now)
        except OSError as exc:
            self._shutdown()
            raise FabricError(f"cannot spawn fabric workers: {exc}",
                              table.results()) from exc
        telemetry = None
        if cfg.telemetry_endpoint:
            from ...obs.telemetry import TelemetryServer
            telemetry = TelemetryServer(
                cfg.telemetry_endpoint, self.metrics.snapshot,
                scope="sweep-fabric").start()
        try:
            self._loop(table)
        except (FabricError, FabricTaskError):
            self._persist_defects()
            raise
        finally:
            self._shutdown()
            if telemetry is not None:
                telemetry.stop()
        self._persist_defects()
        results = table.results()
        return [results[i] for i in range(len(tasks))]

    def _loop(self, table: LeaseTable) -> None:
        cfg = self.config
        tick = max(0.01, cfg.heartbeat_interval / 2)
        while not table.done():
            now = time.monotonic()
            self._do_respawns(now)
            if not self._workers and not self._respawn_due:
                raise FabricError(
                    "no live workers and respawn budget exhausted "
                    f"({self._respawns} respawns)", table.results())
            self._dispatch(table, now)
            # live-state gauges for the telemetry endpoint / `repro top`
            self.metrics.gauge("fabric.workers.live").set(
                len(self._workers))
            self.metrics.gauge("fabric.leases.open").set(
                sum(1 for w in self._workers.values()
                    if w.current is not None))
            events = self._sel.select(timeout=tick)
            now = time.monotonic()
            dead: List[_Worker] = []
            for key, _mask in events:
                worker: _Worker = key.data
                alive, frames = drain_socket(worker.sock, worker.reader)
                for frame in frames:
                    self._handle_frame(worker, frame, table, now)
                if not alive and worker.id in self._workers:
                    dead.append(worker)
            for worker in list(self._workers.values()):
                if worker in dead:
                    continue
                if not worker.proc.is_alive():
                    dead.append(worker)
                elif now - worker.last_hb > cfg.heartbeat_timeout:
                    self.metrics.counter("fabric.heartbeats.missed").inc()
                    dead.append(worker)
            for worker in dead:
                if worker.id in self._workers:
                    self._worker_died(worker, table, time.monotonic())
            self._check_leases(table, time.monotonic())

    # -- frame handling -----------------------------------------------------

    def _handle_frame(self, worker: _Worker, frame: tuple,
                      table: LeaseTable, now: float) -> None:
        kind = frame[0]
        if kind == "hb":
            worker.last_hb = now
            self.metrics.counter("fabric.heartbeats").inc()
            return
        if kind == "hello":
            worker.last_hb = now
            return
        if kind == "error":
            _, index, key, tb = frame
            raise FabricTaskError(key, tb)
        if kind != "result":
            return
        _, index, key, fingerprint, result = frame
        worker.last_hb = now
        if worker.current == index:
            worker.current = None
            worker.hung_since = None
        committed = table.complete(index, worker.id, result)
        if committed:
            self._commit(index, key, fingerprint, result)
        else:
            self.metrics.counter("fabric.tasks.duplicates").inc()
            expected = self._fingerprints.get(index)
            if expected is not None and expected != fingerprint:
                # two executions of one task disagreeing is a broken
                # determinism contract — the most serious defect the
                # fabric can observe; record it machine-readably
                self.metrics.counter("fabric.defects.determinism").inc()
                self.audit.defect(
                    component="fabric", key=key,
                    reason="duplicate execution produced a different "
                           "fingerprint (determinism violation)",
                    expected=expected, actual=fingerprint)

    def _commit(self, index: int, key: str, fingerprint: str,
                result: Any) -> None:
        self._fingerprints[index] = fingerprint
        self._completed += 1
        self.metrics.counter("fabric.tasks.completed").inc()
        if self._cache is not None:
            # the checkpoint: every committed task lands on disk
            # before the sweep moves on, so a killed sweep resumes here
            self._cache.put(key, result)
        self._maybe_chaos_kill()

    # -- failure paths ------------------------------------------------------

    def _worker_died(self, worker: _Worker, table: LeaseTable,
                     now: float) -> None:
        requeued, poisoned = table.worker_died(worker.id)
        self._retire_worker(worker)
        self.metrics.counter("fabric.workers.died").inc()
        for index in poisoned:
            self._quarantine(index, table)
        if self._respawns < self.config.max_respawns:
            backoff = self.config.respawn_backoff * (
                2 ** min(self._respawns, 6))
            self._respawns += 1
            self._respawn_due.append(now + backoff)
        # with the budget exhausted the loop keeps going on the
        # remaining workers; _loop aborts only when none are left

    def _do_respawns(self, now: float) -> None:
        due = [t for t in self._respawn_due if t <= now]
        if not due:
            return
        self._respawn_due = [t for t in self._respawn_due if t > now]
        for _ in due:
            try:
                self._spawn_worker(now)
                self.metrics.counter("fabric.workers.respawned").inc()
            except OSError:
                # couldn't respawn: put the slot back with more backoff
                self._respawn_due.append(
                    now + self.config.respawn_backoff * 4)

    def _quarantine(self, index: int, table: LeaseTable) -> None:
        """A poison task: record the defect, then run it inline —
        the master is the executor of last resort."""
        key, payload = self._tasks[index]
        self.metrics.counter("fabric.tasks.quarantined").inc()
        self.audit.defect(
            component="fabric", key=key,
            reason=f"task killed {table.kills(index)} workers; "
                   "quarantined and executed inline in the master",
            worker_kills=table.kills(index))
        result = self.worker_fn(payload)
        table.commit_inline(index, result)
        self._commit(index, key, result_fingerprint(result), result)

    def _check_leases(self, table: LeaseTable, now: float) -> None:
        expired = table.expire(now)
        if expired:
            self.metrics.counter("fabric.leases.expired").inc(len(expired))
        for lease in expired:
            worker = self._workers.get(lease.worker)
            if worker is None or worker.current != lease.task:
                continue
            # the worker keeps running its (now expired) task; its
            # eventual result is deduped.  But a worker that blows far
            # past the lease is presumed hung and recycled.
            if worker.hung_since is None:
                worker.hung_since = lease.issued_at
        grace = self.config.hung_grace_factor * table.task_timeout
        for worker in list(self._workers.values()):
            if (worker.hung_since is not None
                    and now - worker.hung_since > grace):
                self.metrics.counter("fabric.workers.hung").inc()
                self._worker_died(worker, table, now)

    # -- dispatch & stealing ------------------------------------------------

    def _dispatch(self, table: LeaseTable, now: float) -> None:
        for worker in list(self._workers.values()):
            if worker.current is not None:
                continue
            lease = table.next_task(worker.id, now)
            if lease is None:
                return
            if lease.stolen:
                self.metrics.counter("fabric.tasks.stolen").inc()
            key, payload = self._tasks[lease.task]
            self.metrics.counter("fabric.leases.issued").inc()
            if self.config.correlation:
                # 5th element: correlation id (older workers unpack
                # with *rest, so mixed versions stay compatible)
                frame = ("task", lease.task, key, payload,
                         self.config.correlation)
            else:
                frame = ("task", lease.task, key, payload)
            try:
                worker.sock.setblocking(True)
                send_frame(worker.sock, frame)
                worker.sock.setblocking(False)
                worker.current = lease.task
            except OSError:
                self._worker_died(worker, table, now)

    # -- chaos hook ----------------------------------------------------------

    def _maybe_chaos_kill(self) -> None:
        if self._chaos_left <= 0 or not self._workers:
            return
        self._chaos_left -= 1
        victim = self._chaos_rng.choice(
            sorted(self._workers.values(), key=lambda w: w.id))
        self.metrics.counter("fabric.chaos.kills").inc()
        try:
            os.kill(victim.pid, signal.SIGKILL)
        except (OSError, TypeError):
            pass

    # -- teardown ------------------------------------------------------------

    def _shutdown(self) -> None:
        for worker in list(self._workers.values()):
            try:
                worker.sock.setblocking(True)
                send_frame(worker.sock, ("shutdown",))
            except OSError:
                pass
        for worker in list(self._workers.values()):
            self._retire_worker(worker, kill=False)
            try:
                if worker.proc.is_alive():
                    worker.proc.kill()
                    worker.proc.join(0.2)
            except Exception:
                pass
        try:
            self._sel.close()
        except Exception:
            pass

    def _persist_defects(self) -> None:
        path = self.config.defects_path
        if not path or not len(self.audit):
            return
        from ...adcl.history import atomic_write_json
        atomic_write_json(path, {"defects": self.audit.to_json()})


def run_tasks_fabric(
    tasks: Sequence[Tuple[str, Any]],
    worker_fn: Callable[[Any], Any],
    jobs: int,
    cache=None,
    config: Optional[FabricConfig] = None,
) -> List[Any]:
    """Run ``tasks`` on a fresh fabric; results in task order.

    Raises :class:`FabricError` with partial results when the fabric
    cannot keep enough workers alive — callers degrade to serial.
    """
    if not fork_available():
        raise FabricError("fork start method unavailable on this platform")
    master = FabricMaster(worker_fn, jobs, config)
    return master.run(tasks, cache=cache)
