"""The lease state machine: who is running which task, until when.

Pure bookkeeping, no processes and no wall clock of its own — every
method takes ``now`` explicitly, so the whole state machine is
deterministic and property-testable (``tests/bench/fabric/
test_leases.py`` drives it through hypothesis-generated interleavings
of deaths, expiries and completions and asserts the committed
task→result map always equals the serial executor's).

Task lifecycle::

    PENDING --assign--> LEASED --complete--> DONE
       ^                  |  \
       |   expire/death   |   steal (duplicate lease, clones <= 2)
       +------------------+
       |
       +--(worker died holding it >= poison_worker_kills times)--> POISONED

Rules the master relies on:

* a task is committed exactly once (first result wins); later results
  for the same task are duplicates, reported as such so the master can
  verify their fingerprints match;
* a worker's death requeues every lease it held and counts one *kill*
  against each held task; a task whose kill count reaches
  ``poison_worker_kills`` is quarantined (POISONED) instead of being
  requeued — it killed enough workers that handing it out again would
  sink the sweep;
* an expired lease requeues the task but does **not** count a kill
  (the worker may merely be slow; the eventual duplicate result is
  deduped);
* work stealing: when nothing is pending, an idle worker may take a
  *duplicate* lease on the longest-running outstanding task (bounded
  clones), so one straggler cannot serialize the sweep tail.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Set, Tuple

__all__ = ["Lease", "LeaseTable", "TaskState"]


class TaskState(enum.Enum):
    PENDING = "pending"
    LEASED = "leased"
    DONE = "done"
    POISONED = "poisoned"


class Lease:
    """One worker's claim on one task."""

    __slots__ = ("task", "worker", "issued_at", "deadline", "stolen")

    def __init__(self, task: int, worker: int, issued_at: float,
                 deadline: float, stolen: bool = False):
        self.task = task
        self.worker = worker
        self.issued_at = issued_at
        self.deadline = deadline
        self.stolen = stolen

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "steal" if self.stolen else "lease"
        return (f"<{kind} task={self.task} worker={self.worker} "
                f"deadline={self.deadline:.3f}>")


class LeaseTable:
    """Lease bookkeeping for ``n_tasks`` tasks.

    Parameters
    ----------
    n_tasks:
        Number of tasks, addressed by index ``0..n_tasks-1``.
    task_timeout:
        Lease lifetime in seconds (the master's clock; wall seconds in
        production, scripted values under test).
    poison_worker_kills:
        A task that was held by a dying worker this many times is
        quarantined instead of requeued.
    max_clones:
        Maximum concurrent leases per task (primary + steals).
    """

    def __init__(self, n_tasks: int, task_timeout: float = 60.0,
                 poison_worker_kills: int = 2, max_clones: int = 2,
                 steal_min_age: float = 0.0):
        if n_tasks < 0:
            raise ValueError("n_tasks must be >= 0")
        self.n_tasks = n_tasks
        self.task_timeout = float(task_timeout)
        self.poison_worker_kills = int(poison_worker_kills)
        self.max_clones = int(max_clones)
        #: a lease younger than this is not a straggler yet — stealing
        #: it would only burn duplicate work
        self.steal_min_age = float(steal_min_age)

        self._pending: Deque[int] = deque(range(n_tasks))
        self._leases: Dict[Tuple[int, int], Lease] = {}  # (task, worker)
        self._results: Dict[int, Any] = {}
        self._kills: Dict[int, int] = {}        # task -> worker deaths held
        self._reassigns: Dict[int, int] = {}    # task -> requeue count
        self._poisoned: Set[int] = set()
        # counters the master mirrors into its metrics registry
        self.leases_issued = 0
        self.leases_expired = 0
        self.tasks_stolen = 0
        self.duplicate_results = 0

    # -- queries ------------------------------------------------------------

    def state(self, task: int) -> TaskState:
        if task in self._results:
            return TaskState.DONE
        if task in self._poisoned:
            return TaskState.POISONED
        if any(lease.task == task for lease in self._leases.values()):
            return TaskState.LEASED
        return TaskState.PENDING

    def done(self) -> bool:
        """Every task either committed or quarantined."""
        return len(self._results) + len(self._poisoned) >= self.n_tasks

    def results(self) -> Dict[int, Any]:
        return dict(self._results)

    def poisoned(self) -> List[int]:
        return sorted(self._poisoned)

    def outstanding(self) -> List[Lease]:
        return list(self._leases.values())

    def worker_tasks(self, worker: int) -> List[int]:
        return [l.task for l in self._leases.values() if l.worker == worker]

    def kills(self, task: int) -> int:
        return self._kills.get(task, 0)

    def reassignments(self, task: int) -> int:
        return self._reassigns.get(task, 0)

    def pending_count(self) -> int:
        return len(self._pending)

    # -- assignment ---------------------------------------------------------

    def next_task(self, worker: int, now: float,
                  allow_steal: bool = True) -> Optional[Lease]:
        """Lease the next unit of work to ``worker``, or None.

        Pending tasks first; with the pending queue drained, a steal —
        a duplicate lease on the oldest outstanding task (straggler
        heuristic) that this worker is not already running and that has
        fewer than ``max_clones`` active leases.
        """
        while self._pending:
            task = self._pending.popleft()
            # a task may have been committed (duplicate result) or
            # poisoned while queued; skip stale queue entries
            if task in self._results or task in self._poisoned:
                continue
            return self._issue(task, worker, now, stolen=False)
        if not allow_steal:
            return None
        victim = self._steal_candidate(worker, now)
        if victim is None:
            return None
        self.tasks_stolen += 1
        return self._issue(victim, worker, now, stolen=True)

    def _issue(self, task: int, worker: int, now: float,
               stolen: bool) -> Lease:
        lease = Lease(task, worker, now, now + self.task_timeout, stolen)
        self._leases[(task, worker)] = lease
        self.leases_issued += 1
        return lease

    def _steal_candidate(self, worker: int, now: float) -> Optional[int]:
        clones: Dict[int, int] = {}
        holders: Dict[int, Set[int]] = {}
        oldest: Dict[int, float] = {}
        for lease in self._leases.values():
            clones[lease.task] = clones.get(lease.task, 0) + 1
            holders.setdefault(lease.task, set()).add(lease.worker)
            prev = oldest.get(lease.task)
            if prev is None or lease.issued_at < prev:
                oldest[lease.task] = lease.issued_at
        candidates = [
            task for task, n in clones.items()
            if n < self.max_clones and worker not in holders[task]
            and now - oldest[task] >= self.steal_min_age
            and task not in self._results and task not in self._poisoned
        ]
        if not candidates:
            return None
        # longest-running first; index breaks ties deterministically
        return min(candidates, key=lambda t: (oldest[t], t))

    # -- completion ---------------------------------------------------------

    def complete(self, task: int, worker: int, result: Any) -> bool:
        """Commit a result.  True if this was the first (committing)
        result for the task, False for a duplicate (steal/retry echo)."""
        self._leases.pop((task, worker), None)
        if task in self._results:
            self.duplicate_results += 1
            return False
        if task in self._poisoned:
            # a quarantined task's late result is still the
            # deterministic answer; taking it un-poisons the task
            self._poisoned.discard(task)
        self._results[task] = result
        # drop sibling leases (steals) — their results will be dupes
        for key in [k for k in self._leases if k[0] == task]:
            del self._leases[key]
        return True

    def commit_inline(self, task: int, result: Any) -> None:
        """Commit a result computed by the master itself (quarantine
        fallback or serial degradation)."""
        self._poisoned.discard(task)
        for key in [k for k in self._leases if k[0] == task]:
            del self._leases[key]
        self._results.setdefault(task, result)

    # -- failure handling ---------------------------------------------------

    def worker_died(self, worker: int) -> Tuple[List[int], List[int]]:
        """Tear down every lease ``worker`` held.

        Returns ``(requeued, poisoned)`` task index lists.  Each held
        task gets one kill counted against it; crossing
        ``poison_worker_kills`` quarantines it instead of requeueing.
        """
        requeued: List[int] = []
        poisoned: List[int] = []
        for key in [k for k in self._leases if k[1] == worker]:
            task = key[0]
            del self._leases[key]
            if task in self._results:
                continue
            self._kills[task] = self._kills.get(task, 0) + 1
            if self._kills[task] >= self.poison_worker_kills:
                if not self._has_live_lease(task):
                    self._poisoned.add(task)
                    poisoned.append(task)
                continue
            self._requeue(task)
            requeued.append(task)
        return requeued, poisoned

    def expire(self, now: float) -> List[Lease]:
        """Requeue every lease past its deadline (no kill counted)."""
        expired = [l for l in self._leases.values() if l.deadline <= now]
        for lease in expired:
            del self._leases[(lease.task, lease.worker)]
            self.leases_expired += 1
            if lease.task not in self._results:
                self._requeue(lease.task)
        return expired

    def _has_live_lease(self, task: int) -> bool:
        return any(k[0] == task for k in self._leases)

    def _requeue(self, task: int) -> None:
        if (task not in self._pending and task not in self._results
                and task not in self._poisoned):
            self._reassigns[task] = self._reassigns.get(task, 0) + 1
            self._pending.append(task)

    # -- stats --------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "tasks": self.n_tasks,
            "committed": len(self._results),
            "poisoned": len(self._poisoned),
            "leases_issued": self.leases_issued,
            "leases_expired": self.leases_expired,
            "tasks_stolen": self.tasks_stolen,
            "duplicate_results": self.duplicate_results,
        }
