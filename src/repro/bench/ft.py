"""Fault-tolerant overlap benchmark: tuning that survives rank crashes.

:func:`run_overlap_ft` runs the §IV-A overlap loop with process-failure
recovery *inside* one simulation: when a rank crashes mid-tuning, the
survivors follow the ULFM pattern — revoke the communicator, agree on
the decision epoch, shrink to the dense survivor group — then repair the
shared :class:`~repro.adcl.request.ADCLRequest` against the shrunken
communicator and resume tuning where they left off, keeping every
measurement taken before the crash.  At the end all survivors run a
fault-tolerant agreement on the winning implementation, so the reported
decision is provably uniform across the surviving group.

Checkpointing rides along: the coordinator (lowest surviving rank)
periodically snapshots the tuner's event journal into a
:class:`~repro.adcl.checkpoint.CheckpointStore`.  A *later execution*
can warm-start from that checkpoint (``restore_from``) and skip the
measurements already paid for — the ablation in
``benchmarks/test_abl_crash.py`` quantifies the learning iterations
saved versus a cold restart.

Unlike :func:`~repro.bench.overlap.run_overlap`, the iteration barrier
here is the *message-based* dissemination barrier: a hard barrier cannot
be interrupted by a peer's death, a real one can — recovery must work
when the failure surfaces inside the hygiene barrier too.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..adcl.checkpoint import CheckpointStore, restore, snapshot
from ..adcl.function import CollSpec
from ..adcl.request import ADCLRequest
from ..adcl.selection.base import FixedSelector, Selector
from ..adcl.timer import ADCLTimer, TimerRecord
from ..errors import CommRevokedError, RankFailedError
from ..nbc.coll import barrier as nbc_barrier
from ..sim import Compute, Progress, SimWorld, get_platform
from .overlap import OverlapConfig, OverlapResult, function_set_for

__all__ = ["FTOverlapResult", "run_overlap_ft"]


@dataclass
class FTOverlapResult(OverlapResult):
    """Outcome of a fault-tolerant run (in-simulation ULFM recovery)."""

    #: world ranks that crashed during the run
    dead: list[int] = field(default_factory=list)
    #: world ranks alive at the end
    survivors: list[int] = field(default_factory=list)
    #: communicator repairs (revoke/agree/shrink rounds) performed
    repairs: int = 0
    #: winner name each surviving rank obtained from the final agreement
    #: (uniform by construction — asserting that is the point)
    agreed_winner: dict = field(default_factory=dict)
    #: snapshots written to the checkpoint store during the run
    checkpoints_written: int = 0
    #: epoch restored from a warm-start checkpoint (0: cold start)
    restored_epoch: int = 0
    #: harness-level accounting: total virtual time respawned
    #: replacements would wait before rejoining (informational)
    respawn_wait: float = 0.0

    @property
    def learning_iterations(self) -> int:
        """Iterations spent in the learning phase."""
        return sum(1 for r in self.records if r.learning)


def run_overlap_ft(
    config: OverlapConfig,
    selector: Union[str, Selector, int] = "brute_force",
    evals_per_function: int = 5,
    filter_method: str = "cluster",
    history=None,
    checkpoint: Optional[CheckpointStore] = None,
    checkpoint_every: int = 0,
    checkpoint_key: Optional[str] = None,
    restore_from: Optional[dict] = None,
    max_repairs: Optional[int] = None,
) -> FTOverlapResult:
    """Execute the overlap benchmark with in-simulation crash recovery.

    ``config.faults`` may contain :class:`~repro.sim.faults.RankCrash`
    entries; the tuning loop recovers from them and still completes
    ``config.iterations`` measured iterations on the survivor group.
    With ``checkpoint``/``checkpoint_every`` set, the coordinator
    snapshots tuning state every that-many completed iterations;
    ``restore_from`` warm-starts from a snapshot taken by an earlier
    execution.  ``max_repairs`` bounds recovery rounds (then the last
    failure is re-raised, aborting the simulation).
    """
    world = SimWorld(
        get_platform(config.platform),
        config.nprocs,
        noise=config.noise(),
        placement=config.placement,
        faults=config.faults,
        reliable=config.reliable,
        max_retries=config.max_retries,
    )
    fnset = function_set_for(config.operation)
    kind = "bcast" if config.operation == "bcast" else "alltoall"
    spec = CollSpec(kind, world.comm_world, config.nbytes)
    if isinstance(selector, int):
        selector = FixedSelector(fnset, selector)
    areq = ADCLRequest(
        fnset,
        spec,
        selector=selector,
        evals_per_function=evals_per_function,
        filter_method=filter_method,
        history=history,
    )
    restored_epoch = 0
    if restore_from is not None:
        restored_epoch = restore(areq, restore_from)
    chunk = config.compute_per_iteration / max(config.nprogress, 1)
    if checkpoint_key is None:
        checkpoint_key = (
            f"{config.operation}@{config.platform}:B{config.nbytes}"
        )

    # shared replicated driver state (same idiom as the request itself)
    timers = [ADCLTimer(areq)]
    repair_state = {"comm_id": spec.comm.comm_id, "repairs": 0}
    last_ckpt = [0]
    ckpt_writes = [0]
    agreed_winner: dict[int, Optional[str]] = {}

    def completed() -> int:
        return sum(len(t.records) for t in timers)

    def _recover(ctx, comm):
        """ULFM recovery round (generator): revoke, agree, shrink, repair."""
        comm.revoke(ctx)
        # synchronize on the decision epoch: with replicated tuner state
        # this is trivially uniform, but the agreement is what guarantees
        # it — a rank with a diverged epoch would be detected here
        yield from comm.agree(ctx, areq.epoch, op="min")
        newcomm = comm.shrink()
        if repair_state["comm_id"] != newcomm.comm_id:
            # first survivor through performs the (collective) repair
            repair_state["comm_id"] = newcomm.comm_id
            repair_state["repairs"] += 1
            areq.repair(newcomm)
            timers.append(ADCLTimer(areq))
        return newcomm

    def factory(ctx):
        comm = world.comm_world
        failures = 0
        while completed() < config.iterations:
            try:
                timer = timers[-1]
                timer.start(ctx)
                yield from areq.start(ctx)
                for _ in range(config.nprogress):
                    yield Compute(chunk)
                    yield Progress([areq.handle(ctx)])
                yield from areq.wait(ctx)
                timers[-1].stop(ctx)
                # hygiene barrier: message-based, hence revocable
                yield from nbc_barrier(ctx, comm)
            except (RankFailedError, CommRevokedError):
                failures += 1
                if max_repairs is not None and failures > max_repairs:
                    raise
                comm = yield from _recover(ctx, comm)
                continue
            done = completed()
            if (
                checkpoint is not None
                and checkpoint_every > 0
                and done - last_ckpt[0] >= checkpoint_every
                and comm.live_ranks()
                and ctx.rank == comm.live_ranks()[0]
            ):
                last_ckpt[0] = done
                checkpoint.save(checkpoint_key, snapshot(areq))
                ckpt_writes[0] += 1
        # uniform decision: every survivor reports the agreed winner
        mine = areq.selector.winner if areq.decided else None
        w = yield from comm.agree(
            ctx, mine if mine is not None else -1, op="min"
        )
        agreed_winner[ctx.rank] = fnset[w].name if w >= 0 else None

    world.launch(factory)
    res = world.run()
    records: list[TimerRecord] = []
    for t in timers:
        records.extend(t.records)
    dead = sorted(world.dead_ranks)
    crashes = config.faults.crashes if config.faults is not None else ()
    return FTOverlapResult(
        config=config,
        records=records,
        fn_names=[fnset[r.fn_index].name for r in records],
        winner=areq.winner_name,
        decided_at=areq.decided_at,
        makespan=res.makespan,
        events=res.events,
        engine_stats=world.sim.stats(),
        dead=dead,
        survivors=[r for r in range(config.nprocs) if r not in dead],
        repairs=repair_state["repairs"],
        agreed_winner=dict(agreed_winner),
        checkpoints_written=ckpt_writes[0],
        restored_epoch=restored_epoch,
        respawn_wait=sum(
            c.respawn_delay or 0.0 for c in crashes if c.rank in dead
        ),
    )
