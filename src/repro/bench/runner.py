"""Benchmark scaling knobs and sweep helpers.

Paper-scale runs (256/500/1024 ranks, hundreds of iterations) are
expensive in a pure-Python discrete-event simulator, so every benchmark
has a *fast* default and honours two environment variables:

* ``REPRO_PAPER_SCALE=1`` — run the paper's full process counts and
  iteration budgets;
* ``REPRO_BENCH_SEED=<int>`` — change the noise seed of stochastic runs.

:func:`scaled` picks between the fast and paper value, and
:class:`SweepResult` accumulates (config -> result) pairs with summary
statistics used by the §IV-A/§IV-B summary tables.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Generic, TypeVar

__all__ = ["paper_scale", "scaled", "bench_seed", "SweepResult"]

T = TypeVar("T")


def paper_scale() -> bool:
    """True when full paper-scale benchmarks were requested."""
    return os.environ.get("REPRO_PAPER_SCALE", "0") not in ("", "0", "false")


def scaled(fast: T, paper: T) -> T:
    """Pick the fast or the paper-scale value of a benchmark knob."""
    return paper if paper_scale() else fast


def bench_seed(default: int = 12345) -> int:
    """Noise seed for stochastic benchmark runs."""
    try:
        return int(os.environ.get("REPRO_BENCH_SEED", default))
    except ValueError:
        return default


@dataclass
class SweepResult(Generic[T]):
    """Accumulates per-scenario outcomes plus pass/fail style counters."""

    name: str
    entries: list[tuple[str, T]] = field(default_factory=list)
    hits: int = 0
    total: int = 0

    def add(self, label: str, value: T, hit: bool | None = None) -> None:
        self.entries.append((label, value))
        if hit is not None:
            self.total += 1
            if hit:
                self.hits += 1

    @property
    def hit_rate(self) -> float:
        """Fraction of scenarios that satisfied the success predicate."""
        return self.hits / self.total if self.total else 0.0

    def summary(self) -> str:
        if not self.total:
            return f"{self.name}: {len(self.entries)} scenarios"
        return (
            f"{self.name}: {self.hits}/{self.total} scenarios "
            f"({100.0 * self.hit_rate:.0f}%)"
        )
