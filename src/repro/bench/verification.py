"""Verification runs (§IV-A): fixed implementations vs. ADCL.

A verification run executes the same micro-benchmark scenario once per
implementation with the selection logic circumvented, plus once per
ADCL selector — and checks whether ADCL picked the *correct winner*:

    "we define the correct winner function as an implementation ...
     which achieves either the best performance for the test case when
     executed without the ADCL decision logic, or is very close to the
     best performance (within 5%)."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from .overlap import OverlapConfig, OverlapResult, function_set_for, run_overlap

__all__ = ["VerificationResult", "run_verification", "CORRECTNESS_TOLERANCE"]

#: the paper's 5% "very close to the best performance" tolerance
CORRECTNESS_TOLERANCE = 0.05


@dataclass
class VerificationResult:
    """All measurements of one verification scenario."""

    config: OverlapConfig
    #: steady-state mean iteration time per fixed implementation name
    fixed_times: Mapping[str, float]
    #: ADCL results per selector name
    adcl_results: Mapping[str, OverlapResult]

    @property
    def best_fixed(self) -> str:
        return min(self.fixed_times, key=self.fixed_times.get)

    def correct_names(self, tolerance: float = CORRECTNESS_TOLERANCE) -> set[str]:
        """Implementations within ``tolerance`` of the best fixed time."""
        best = self.fixed_times[self.best_fixed]
        return {
            name
            for name, t in self.fixed_times.items()
            if t <= best * (1.0 + tolerance)
        }

    def decision_correct(self, selector: str,
                         tolerance: float = CORRECTNESS_TOLERANCE) -> bool:
        """Did this selector choose a correct winner?"""
        winner = self.adcl_results[selector].winner
        return winner in self.correct_names(tolerance)

    def adcl_overhead(self, selector: str) -> float:
        """Relative cost of ADCL's learning phase vs the best fixed run.

        Compares projected totals (paper-length loops), where learning
        costs amortize; >0 means ADCL's full run was slower than always
        using the best implementation.
        """
        best = self.fixed_times[self.best_fixed] * self.config.paper_iterations
        adcl = self.adcl_results[selector].projected_total()
        return adcl / best - 1.0


def run_verification(
    config: OverlapConfig,
    selectors: Sequence[str] = ("brute_force", "heuristic"),
    evals_per_function: int = 5,
    fixed_iterations: Optional[int] = None,
) -> VerificationResult:
    """Run the full verification protocol for one scenario.

    Fixed runs use ``fixed_iterations`` iterations (default: enough for
    a stable mean, 10) and report the mean iteration time; ADCL runs use
    ``config.iterations`` so the learning phase plus a steady tail fits.
    """
    from dataclasses import replace

    fnset = function_set_for(config.operation)
    if fixed_iterations is None:
        fixed_iterations = 10
    fixed_cfg = replace(config, iterations=fixed_iterations)
    fixed_times = {}
    for idx, fn in enumerate(fnset):
        res = run_overlap(fixed_cfg, selector=idx)
        # use the same outlier-filtered estimator ADCL itself uses, so
        # the "correct winner" judgment is not dominated by OS noise
        fixed_times[fn.name] = res.robust_mean_iteration()
    # ADCL runs need the learning phase plus a steady-state tail
    adcl_iters = max(
        config.iterations, len(fnset) * evals_per_function + 10
    )
    adcl_cfg = replace(config, iterations=adcl_iters)
    adcl_results = {}
    for sel in selectors:
        adcl_results[sel] = run_overlap(
            adcl_cfg, selector=sel, evals_per_function=evals_per_function
        )
    return VerificationResult(
        config=config, fixed_times=fixed_times, adcl_results=adcl_results
    )
