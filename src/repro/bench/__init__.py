"""Micro-benchmark machinery for the paper's §IV-A evaluation.

* :mod:`repro.bench.overlap` — the communication/computation overlap
  micro-benchmark (loop of init / chunked compute with progress calls /
  wait);
* :mod:`repro.bench.verification` — verification runs: every fixed
  implementation vs. the ADCL selectors, with the paper's 5%%
  correct-decision criterion;
* :mod:`repro.bench.report` — paper-style text tables and bar charts;
* :mod:`repro.bench.runner` — fast-vs-paper-scale knobs;
* :mod:`repro.bench.parallel` — the parallel sweep executor
  (keyed on-disk result cache + serial fallback);
* :mod:`repro.bench.fabric` — the resilient master/worker fabric that
  ``--jobs N`` sweeps actually run on: long-lived workers, leases,
  heartbeats, respawn, work stealing, chaos hooks.
"""

from .fabric import (
    FabricConfig,
    FabricError,
    result_fingerprint,
    run_tasks_fabric,
)
from .ft import FTOverlapResult, run_overlap_ft
from .overlap import (
    OPERATION_KINDS,
    OverlapConfig,
    OverlapResult,
    ResilientOverlapResult,
    function_set_for,
    run_overlap,
    run_overlap_resilient,
)
from .parallel import (
    ResultCache,
    derive_seed,
    fft_methods,
    run_tasks,
    sweep_implementations,
    task_key,
)
from .report import format_bars, format_series, format_table
from .runner import SweepResult, bench_seed, paper_scale, scaled
from .verification import (
    CORRECTNESS_TOLERANCE,
    VerificationResult,
    run_verification,
)

__all__ = [
    "CORRECTNESS_TOLERANCE",
    "FTOverlapResult",
    "FabricConfig",
    "FabricError",
    "OPERATION_KINDS",
    "OverlapConfig",
    "OverlapResult",
    "ResilientOverlapResult",
    "ResultCache",
    "SweepResult",
    "VerificationResult",
    "bench_seed",
    "derive_seed",
    "fft_methods",
    "format_bars",
    "format_series",
    "format_table",
    "function_set_for",
    "paper_scale",
    "result_fingerprint",
    "run_overlap",
    "run_overlap_ft",
    "run_overlap_resilient",
    "run_tasks",
    "run_tasks_fabric",
    "run_verification",
    "scaled",
    "sweep_implementations",
    "task_key",
]
