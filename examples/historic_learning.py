#!/usr/bin/env python
"""Historic learning: amortizing the tuning phase across executions.

ADCL's learning phase costs real time — it must execute the suboptimal
candidates a few times each.  For short-running applications that cost
can eat the gains (the paper's Figs. 11/12 discussion).  The remedy is
*historic learning*: the tuning decision is persisted, keyed by the
exact problem signature, and the next execution of the same problem
starts directly with the recorded winner.

Run:  python examples/historic_learning.py
"""

import os
import tempfile

from repro.adcl import HistoryStore
from repro.bench import OverlapConfig, run_overlap
from repro.units import KiB, fmt_time


def main() -> None:
    cfg = OverlapConfig(
        platform="whale", nprocs=16, nbytes=128 * KiB,
        compute_total=10.0, paper_iterations=1000,
        iterations=30, nprogress=5,
    )
    path = os.path.join(tempfile.mkdtemp(prefix="repro-history-"),
                        "history.json")
    store = HistoryStore(path)

    print("first execution (cold store): full learning phase")
    first = run_overlap(cfg, selector="brute_force",
                        evals_per_function=5, history=store)
    learn = sum(r.seconds for r in first.records if r.learning)
    print(f"  winner {first.winner!r} decided at iteration "
          f"{first.decided_at}; learning cost {fmt_time(learn)}; "
          f"total {fmt_time(first.total_time)}")

    print(f"\nhistory store now holds {len(store)} record(s) at {path}")

    print("\nsecond execution (warm store): learning skipped entirely")
    second = run_overlap(cfg, selector="brute_force",
                         evals_per_function=5, history=store)
    print(f"  every iteration uses {second.winner!r} from the store; "
          f"total {fmt_time(second.total_time)}")

    saved = first.total_time - second.total_time
    print(f"\n-> the warm run is {fmt_time(saved)} "
          f"({100 * saved / first.total_time:.1f}%) cheaper for the same "
          f"{cfg.iterations} iterations.")

    print("\na different message size is a different tuning problem:")
    other = OverlapConfig(**{**cfg.__dict__, "nbytes": 1 * KiB})
    third = run_overlap(other, selector="brute_force",
                        evals_per_function=5, history=store)
    print(f"  1KB run learned from scratch and chose {third.winner!r}; "
          f"store now holds {len(store)} records")


if __name__ == "__main__":
    main()
