#!/usr/bin/env python
"""The 3-D FFT application kernel with run-time tuned transposes (§IV-B).

Runs a slab-decomposed 3-D FFT whose z<->y transpose (the all-to-all)
is overlapped with the plane FFTs using the window-tiled pattern, and
compares three ways to drive the communication:

* stock LibNBC   — single fixed (linear) non-blocking algorithm,
* blocking MPI   — `MPI_Alltoall`, no overlap,
* ADCL           — run-time selection among linear / dissemination /
                   pairwise.

It also demonstrates the numerical path: with ``validate=True`` real
complex data travels through the simulated network and the distributed
result is checked against ``numpy.fft.fftn``.

Run:  python examples/fft3d_tuning.py
"""

from repro.apps.fft import FFTConfig, run_fft
from repro.units import fmt_time

PLATFORM = "crill"
NPROCS = 48
N = 480
PATTERN = "window_tiled"


def main() -> None:
    print(f"3-D FFT of {N}^3 complex points on {NPROCS} simulated "
          f"{PLATFORM} ranks, pattern={PATTERN}\n")

    # 1. correctness: small instance with real data through the network
    check = run_fft(FFTConfig(n=16, nprocs=4, pattern=PATTERN, method="adcl",
                              iterations=6, validate=True,
                              evals_per_function=2))
    print(f"numerical validation vs numpy.fft.fftn: "
          f"{'PASSED' if check.validated else 'FAILED'}\n")

    # 2. performance: the three methods on the big instance
    results = {}
    for method in ("libnbc", "mpi", "adcl"):
        res = run_fft(FFTConfig(n=N, nprocs=NPROCS, platform=PLATFORM,
                                pattern=PATTERN, method=method,
                                iterations=12, evals_per_function=2))
        results[method] = res
        extra = f" -> selected {res.winner!r}" if method == "adcl" else ""
        print(f"{method:>7}: mean iteration {fmt_time(res.mean_iteration)}, "
              f"steady state {fmt_time(res.mean_after_learning())}{extra}")

    nbc_t = results["libnbc"].mean_iteration
    adcl_t = results["adcl"].mean_after_learning()
    print(f"\nADCL steady state vs stock LibNBC: "
          f"{100 * (1 - adcl_t / nbc_t):+.1f}% "
          f"(the paper reports improvements up to 40%)")


if __name__ == "__main__":
    main()
