#!/usr/bin/env python
"""Why one algorithm cannot win everywhere (the paper's Fig. 3).

Runs the same non-blocking all-to-all scenario — 32 ranks, 128 KB per
pair, overlapped with computation — on the whale cluster twice: once
over its InfiniBand network and once over Gigabit Ethernet.  The
ranking of the three algorithms flips completely, which is exactly why
hard-coding a single implementation is a losing game.

Run:  python examples/network_comparison.py
"""

from repro.bench import OverlapConfig, format_bars, function_set_for, run_overlap
from repro.units import KiB


def sweep(platform: str) -> dict[str, float]:
    fnset = function_set_for("alltoall")
    cfg = OverlapConfig(
        platform=platform,
        nprocs=32,
        nbytes=128 * KiB,
        compute_total=50.0,
        paper_iterations=1000,
        iterations=8,
        nprogress=5,
    )
    return {
        fn.name: run_overlap(cfg, selector=i).mean_iteration
        for i, fn in enumerate(fnset)
    }


def main() -> None:
    ib = sweep("whale")
    tcp = sweep("whale_tcp")
    print(format_bars(ib, title="whale over InfiniBand (mean iteration time)"))
    print()
    print(format_bars(tcp, title="whale over Gigabit Ethernet"))
    print()
    winner_ib = min(ib, key=ib.get)
    loser_tcp = max(tcp, key=tcp.get)
    print(f"-> {winner_ib!r} wins on InfiniBand but is the *worst* choice "
          f"on TCP ({loser_tcp!r} loses by "
          f"{tcp[loser_tcp] / min(tcp.values()):.1f}x).")
    print("   Same machine, same code, different network: run-time tuning "
          "is the only portable answer.")


if __name__ == "__main__":
    main()
