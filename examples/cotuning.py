#!/usr/bin/env python
"""Co-tuning two collectives with one timer (the paper's §V outlook).

An application loop that overlaps *two* non-blocking collectives — an
all-to-all and an all-gather — with the same computation.  The two
operations share the NIC, so the best algorithm for one depends on what
the other is doing; tuning them independently can settle on a pair of
individually-plausible choices that interact badly.

`CoTuner` searches the cross-product of both function-sets with one
timed window per combination and selects the *jointly* fastest pair.

Run:  python examples/cotuning.py
"""

from repro.adcl import ADCLRequest, CollSpec, CoTuner, ialltoall_function_set
from repro.adcl.fnsets import iallgather_function_set
from repro.sim import Compute, Progress, SimWorld, get_platform
from repro.units import KiB, fmt_time

NPROCS = 16
ITER_TAIL = 8
COMPUTE = 0.004


def main() -> None:
    world = SimWorld(get_platform("whale"), NPROCS)
    fns_a2a = ialltoall_function_set()
    fns_ag = iallgather_function_set(size=NPROCS)
    req_a = ADCLRequest(fns_a2a, CollSpec("alltoall", world.comm_world, 32 * KiB))
    req_b = ADCLRequest(fns_ag, CollSpec("allgather", world.comm_world, 64 * KiB))
    tuner = CoTuner([req_a, req_b], evals_per_combo=2)
    iterations = tuner.learning_iterations + ITER_TAIL

    print(f"co-tuning {len(fns_a2a)} x {len(fns_ag)} = "
          f"{len(tuner.combos)} combinations over {iterations} iterations\n")

    def program(ctx):
        for _ in range(iterations):
            tuner.start(ctx)
            ha = yield from req_a.start(ctx)
            hb = yield from req_b.start(ctx)
            for _ in range(5):
                yield Compute(COMPUTE / 5)
                yield Progress([ha, hb])
            yield from req_a.wait(ctx)
            yield from req_b.wait(ctx)
            tuner.stop(ctx)

    world.launch(program)
    world.run()

    print("combination trace (alltoall + allgather -> window time):")
    for rec in tuner.records:
        a_idx, b_idx = tuner.combos[rec.fn_index]
        mark = "learn " if rec.learning else "steady"
        print(f"  iter {rec.iteration:>2} [{mark}] "
              f"{fns_a2a[a_idx].name:<14} + {fns_ag[b_idx].name:<19} "
              f"{fmt_time(rec.seconds)}")
    names = tuner.winner_names
    print(f"\njoint winner: alltoall={names[0]!r} with allgather={names[1]!r}")
    print(f"learning cost {fmt_time(tuner.learning_time())}, "
          f"steady phase {fmt_time(tuner.time_excluding_learning())}")


if __name__ == "__main__":
    main()
