#!/usr/bin/env python
"""The progress-call dilemma (the paper's Figs. 6 and 7).

Single-threaded MPI libraries only advance non-blocking operations when
the application calls into them.  That makes the *number of progress
calls* a tuning knob of its own:

* too few   — rendezvous handshakes and schedule rounds stall, the
  communication stops overlapping (large messages suffer),
* too many  — each call costs CPU time for nothing (small messages
  suffer),
* and the sweet spot depends on the algorithm: the winner can change
  with the progress budget.

Run:  python examples/progress_tuning.py
"""

from repro.bench import OverlapConfig, format_series, function_set_for, run_overlap
from repro.units import KiB


def alltoall_by_progress(npg: int) -> dict[str, float]:
    fnset = function_set_for("alltoall")
    cfg = OverlapConfig(
        platform="crill", nprocs=32, nbytes=128 * KiB,
        compute_total=100.0, paper_iterations=1000,
        iterations=4, nprogress=npg,
    )
    return {
        fn.name: run_overlap(cfg, selector=i).mean_iteration
        for i, fn in enumerate(fnset)
    }


def bcast_overhead(npg: int) -> float:
    fnset = function_set_for("bcast")
    cfg = OverlapConfig(
        platform="whale", nprocs=32, operation="bcast", nbytes=1 * KiB,
        compute_total=50.0, paper_iterations=10000,
        iterations=6, nprogress=npg,
    )
    return run_overlap(cfg, selector=fnset.index_of("binomial_seg32KB")).mean_iteration


def main() -> None:
    counts = (1, 2, 5, 10, 100)

    print("Part 1 - too many progress calls are pure overhead")
    print("(Ibcast 1KB on whale: the message needs no help, every call costs)\n")
    times = [bcast_overhead(n) for n in (1, 10, 100, 500)]
    print(format_series("progress calls", [1, 10, 100, 500],
                        {"binomial bcast": times}))
    print()

    print("Part 2 - the progress budget changes the best algorithm")
    print("(Ialltoall 128KB on one crill node, 100s compute)\n")
    per_npg = {n: alltoall_by_progress(n) for n in counts}
    names = list(next(iter(per_npg.values())))
    series = {nm: [per_npg[n][nm] for n in counts] for nm in names}
    print(format_series("progress calls", counts, series))
    print()
    for n in counts:
        best = min(per_npg[n], key=per_npg[n].get)
        print(f"  {n:>3} progress call(s): best algorithm = {best}")
    print("\n-> with a single progress call the pairwise exchange wins; "
          "give the library a handful and the linear algorithm takes over "
          "(with a huge budget everything overlaps and the leaders tie) — "
          "the paper's Fig. 7.")


if __name__ == "__main__":
    main()
