#!/usr/bin/env python
"""Quickstart: auto-tune a non-blocking all-to-all at run time.

This walks through the paper's core loop (its Fig. 1) on a simulated
cluster:

1. build a simulated machine (`whale`, 16 MPI ranks),
2. create a persistent tuned collective (`ADCLRequest`) over the
   3-algorithm Ialltoall function-set,
3. run the application loop — init / overlapped compute with progress
   calls / wait — with an `ADCLTimer` measuring each iteration,
4. watch ADCL try every implementation and lock in the fastest.

Run:  python examples/quickstart.py
"""

from repro.adcl import ADCLRequest, ADCLTimer, CollSpec, ialltoall_function_set
from repro.sim import Compute, Progress, SimWorld, get_platform
from repro.units import KiB, fmt_time

NPROCS = 16
MESSAGE = 64 * KiB          # bytes per process pair
COMPUTE = 0.005             # seconds of overlappable work per iteration
PROGRESS_CALLS = 5
ITERATIONS = 30


def main() -> None:
    world = SimWorld(get_platform("whale"), NPROCS)
    fnset = ialltoall_function_set()
    spec = CollSpec("alltoall", world.comm_world, MESSAGE)
    areq = ADCLRequest(fnset, spec, selector="brute_force",
                       evals_per_function=3)
    timer = ADCLTimer(areq)

    def program(ctx):
        chunk = COMPUTE / PROGRESS_CALLS
        for _ in range(ITERATIONS):
            timer.start(ctx)                       # ADCL_Timer_start
            yield from areq.start(ctx)             # ADCL_Request_init
            for _ in range(PROGRESS_CALLS):
                yield Compute(chunk)               # overlapped work
                yield Progress([areq.handle(ctx)])  # ADCL_Progress
            yield from areq.wait(ctx)              # ADCL_Request_wait
            timer.stop(ctx)                        # ADCL_Timer_end

    world.launch(program)
    result = world.run()

    print(f"simulated {NPROCS} ranks on {world.platform.description}")
    print(f"virtual run time: {fmt_time(result.makespan)} "
          f"({result.events} simulator events)\n")
    print("per-iteration view (which implementation ran, how long it took):")
    for rec in timer.records:
        phase = "learning" if rec.learning else "steady  "
        name = fnset[rec.fn_index].name
        print(f"  iter {rec.iteration:>2}  {phase}  {name:<14} "
              f"{fmt_time(rec.seconds)}")
    print(f"\ndecision after iteration {areq.decided_at}: "
          f"winner = {areq.winner_name!r}")
    print(f"learning phase cost {fmt_time(timer.learning_time())}, "
          f"steady phase {fmt_time(timer.time_excluding_learning())}")


if __name__ == "__main__":
    main()
